"""Well-formedness checks for both IR dialects.

Validation catches structural errors early (dangling jump targets, calls to
unknown functions, stack ops in the callable dialect and vice versa) so the
virtual machines can assume well-formed input.
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import (
    Branch,
    CallOp,
    ConstOp,
    Function,
    Jump,
    PopOp,
    PrimOp,
    Program,
    PushJump,
    PushOp,
    Return,
    StackProgram,
)


class IRValidationError(ValueError):
    """Raised when an IR object is structurally malformed."""


def _fail(msg: str) -> None:
    raise IRValidationError(msg)


def validate_function(fn: Function) -> None:
    """Check one callable-IR function for structural well-formedness."""
    if not fn.blocks:
        _fail(f"function {fn.name!r} has no blocks")
    if len(set(fn.params)) != len(fn.params):
        _fail(f"function {fn.name!r} has duplicate parameters {fn.params}")
    if not fn.outputs:
        _fail(f"function {fn.name!r} declares no outputs")
    labels: Set[str] = {b.label for b in fn.blocks}
    if len(labels) != len(fn.blocks):
        _fail(f"function {fn.name!r} has duplicate block labels")
    saw_return = False
    for blk in fn.blocks:
        for op in blk.ops:
            if isinstance(op, (PushOp, PopOp)):
                _fail(
                    f"{fn.name}/{blk.label}: stack operation {op} is not valid "
                    "in the callable dialect (Figure 2)"
                )
            elif isinstance(op, (PrimOp, CallOp)):
                if not op.outputs:
                    _fail(f"{fn.name}/{blk.label}: {op} has no outputs")
                if len(set(op.outputs)) != len(op.outputs):
                    _fail(f"{fn.name}/{blk.label}: {op} has duplicate outputs")
            elif isinstance(op, ConstOp):
                pass
            else:
                _fail(f"{fn.name}/{blk.label}: unknown operation {op!r}")
        term = blk.terminator
        if term is None:
            _fail(f"{fn.name}/{blk.label}: missing terminator")
        elif isinstance(term, (Jump, Branch)):
            for target in term.targets():
                if target not in labels:
                    _fail(f"{fn.name}/{blk.label}: jump target {target!r} undefined")
        elif isinstance(term, Return):
            saw_return = True
        elif isinstance(term, PushJump):
            _fail(
                f"{fn.name}/{blk.label}: PushJump is not valid in the callable "
                "dialect (Figure 2)"
            )
        else:
            _fail(f"{fn.name}/{blk.label}: unknown terminator {term!r}")
    if not saw_return:
        _fail(f"function {fn.name!r} has no Return block")


def validate_program(program: Program) -> None:
    """Check a whole callable-IR program, including call targets and arity."""
    if program.main not in program.functions:
        _fail(f"main function {program.main!r} is not defined")
    for fn in program.functions.values():
        validate_function(fn)
        for blk in fn.blocks:
            for op in blk.ops:
                if isinstance(op, CallOp):
                    callee = program.functions.get(op.func)
                    if callee is None:
                        _fail(
                            f"{fn.name}/{blk.label}: call to undefined function "
                            f"{op.func!r}"
                        )
                    if len(op.inputs) != len(callee.params):
                        _fail(
                            f"{fn.name}/{blk.label}: call to {op.func!r} passes "
                            f"{len(op.inputs)} arguments; it takes {len(callee.params)}"
                        )
                    if len(op.outputs) != len(callee.outputs):
                        _fail(
                            f"{fn.name}/{blk.label}: call to {op.func!r} binds "
                            f"{len(op.outputs)} results; it returns {len(callee.outputs)}"
                        )


def validate_stack_program(program: StackProgram) -> None:
    """Check a stack-dialect program: integer targets in range, no CallOps."""
    n = len(program.blocks)
    exit_index = program.exit_index
    for i, blk in enumerate(program.blocks):
        where = f"block {i} ({blk.label})"
        for op in blk.ops:
            if isinstance(op, CallOp):
                _fail(f"{where}: CallOp survived lowering: {op}")
            elif not isinstance(op, (PrimOp, ConstOp, PushOp, PopOp)):
                _fail(f"{where}: unknown operation {op!r}")
        term = blk.terminator
        if term is None:
            _fail(f"{where}: missing terminator")
            continue
        if isinstance(term, (Jump, Branch, PushJump)):
            for target in term.targets():
                if not isinstance(target, int):
                    _fail(f"{where}: unresolved target {target!r}")
                if not (0 <= target <= exit_index):
                    _fail(f"{where}: target {target} out of range [0, {exit_index}]")
                if target == exit_index and not isinstance(term, PushJump):
                    # Only the pc-stack bottom may name the exit index; direct
                    # jumps to it would bypass Return's pop.
                    _fail(f"{where}: direct jump to exit index {exit_index}")
        elif isinstance(term, Return):
            pass
        else:
            _fail(f"{where}: unknown terminator {term!r}")
    if n == 0:
        _fail("stack program has no blocks")
