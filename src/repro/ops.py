"""User-facing namespace of built-in primitives.

Autobatched programs call these like ordinary functions::

    from repro import ops

    @autobatch
    def kinetic(p):
        return 0.5 * ops.dot(p, p)

Each name is a :class:`~repro.frontend.registry.Primitive`, directly callable
from plain Python too.
"""

from repro.frontend.primitives import (  # noqa: F401
    abs_ as abs,  # noqa: A001 - intentional shadow inside this namespace
    add,
    cos,
    div,
    dot,
    eq,
    exp,
    expm1,
    ge,
    gt,
    identity,
    le,
    log,
    log1p,
    logical_and,
    logical_not,
    logical_or,
    logical_xor,
    lt,
    max_last,
    maximum,
    min_last,
    minimum,
    mod,
    mul,
    ne,
    neg,
    norm_sq,
    ones_like,
    pow_ as pow,  # noqa: A001
    rnorm_like,
    rng_next,
    runif,
    runif_like,
    select,
    sigmoid,
    sign,
    sin,
    sqrt,
    sub,
    sum_last,
    tan,
    tanh,
    to_bool,
    to_float,
    to_int,
    zeros_like,
    make_counters,
)

__all__ = [
    "abs", "add", "cos", "div", "dot", "eq", "exp", "expm1", "ge", "gt",
    "identity", "le", "log", "log1p", "logical_and", "logical_not",
    "logical_or", "logical_xor", "lt", "max_last", "maximum", "min_last",
    "minimum", "mod", "mul", "ne", "neg", "norm_sq", "ones_like", "pow",
    "rnorm_like", "rng_next", "runif", "runif_like", "select", "sigmoid",
    "sign", "sin", "sqrt", "sub", "sum_last", "tan", "tanh", "to_bool",
    "to_float", "to_int", "zeros_like", "make_counters",
]
