"""Control-flow-graph utilities over callable-IR functions."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.instructions import Function


def successors(fn: Function) -> Dict[str, Tuple[str, ...]]:
    """Block label -> labels of possible successor blocks."""
    return {
        b.label: tuple(t for t in b.terminator.targets()) if b.terminator else ()
        for b in fn.blocks
    }


def predecessors(fn: Function) -> Dict[str, Tuple[str, ...]]:
    """Block label -> labels of predecessor blocks."""
    preds: Dict[str, List[str]] = {b.label: [] for b in fn.blocks}
    for b in fn.blocks:
        if b.terminator is None:
            continue
        for t in b.terminator.targets():
            preds[t].append(b.label)
    return {k: tuple(v) for k, v in preds.items()}


def reverse_postorder(fn: Function) -> List[str]:
    """Blocks in reverse postorder from the entry (good forward-flow order)."""
    succ = successors(fn)
    visited = set()
    order: List[str] = []

    def visit(label: str) -> None:
        stack = [(label, iter(succ[label]))]
        visited.add(label)
        while stack:
            current, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, iter(succ[nxt])))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(fn.blocks[0].label)
    # Unreachable blocks come last, in program order, so analyses still cover them.
    for b in fn.blocks:
        if b.label not in visited:
            order.append(b.label)
            visited.add(b.label)
    order.reverse()
    return order
