"""Storage-class assignment (paper Section 3, optimizations 2 and 3).

Classifies every variable of every function into one of three classes:

* ``TEMP`` — never live across a block boundary or a call; exists only
  during one basic-block execution and is untouched by the batching system.
* ``REGISTER`` — live across blocks, but never needs two simultaneous
  activations' values; stored as a flat ``(Z, ...)`` array with masked
  updates and no stack.
* ``STACKED`` — a formal parameter of a recursive function (every call
  pushes a fresh argument frame) or a member of some call-site save set
  (live across a call that can clobber it at a different stack depth).

The classification is computed on the *callable* IR, before call lowering,
because the call-lowering pass introduces reads (return-value moves, argument
staging) that must not perturb the save sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from repro.analysis.call_graph import CallGraphInfo, analyze_call_graph
from repro.analysis.liveness import LivenessInfo, call_save_sets, compute_liveness
from repro.ir.instructions import Program, VarKind


@dataclass
class StorageAssignment:
    """Variable kinds plus the per-call-site save sets that imply them."""

    kinds: Dict[str, VarKind]
    #: (function, block label, op index) -> caller-saved variables.
    save_sets: Dict[Tuple[str, str, int], FrozenSet[str]]
    call_graph: CallGraphInfo
    liveness: Dict[str, LivenessInfo] = field(default_factory=dict)

    def kind(self, var: str) -> VarKind:
        """The storage class assigned to ``name``."""
        return self.kinds[var]


def assign_storage(
    program: Program,
    temp_opt: bool = True,
    register_opt: bool = True,
) -> StorageAssignment:
    """Compute storage classes for a (renamed, collision-free) program.

    ``temp_opt=False`` disables optimization 2 (temporaries become
    registers); ``register_opt=False`` disables optimization 3 (registers
    become stacked).  Both toggles exist for the ablation benchmarks.
    """
    cg = analyze_call_graph(program)
    kinds: Dict[str, VarKind] = {}
    save_sets: Dict[Tuple[str, str, int], FrozenSet[str]] = {}
    liveness_by_fn: Dict[str, LivenessInfo] = {}

    for fn in program.functions.values():
        liveness = compute_liveness(fn)
        liveness_by_fn[fn.name] = liveness
        saves = call_save_sets(fn, liveness, cg.clobbers)
        for (label, i), s in saves.items():
            save_sets[(fn.name, label, i)] = s

        stacked: Set[str] = set()
        for s in saves.values():
            stacked |= s
        if fn.name in cg.recursive:
            stacked |= set(fn.params)

        cross = liveness.live_across_blocks() | liveness.live_across_calls(fn)
        for var in fn.variables():
            if var in stacked:
                kinds[var] = VarKind.STACKED
            elif var in cross or var in fn.params or var in fn.outputs:
                # Parameters and outputs must exist outside any single block
                # (they are bound at call sites and read at return moves).
                kinds[var] = VarKind.REGISTER
            else:
                kinds[var] = VarKind.TEMP if temp_opt else VarKind.REGISTER

    if not register_opt:
        for var, kind in kinds.items():
            if kind is VarKind.REGISTER:
                kinds[var] = VarKind.STACKED

    return StorageAssignment(
        kinds=kinds,
        save_sets=save_sets,
        call_graph=cg,
        liveness=liveness_by_fn,
    )
