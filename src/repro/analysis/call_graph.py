"""Call graph construction, recursion detection, and clobber sets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

import networkx as nx

from repro.analysis.liveness import op_defs
from repro.ir.instructions import CallOp, Program


@dataclass
class CallGraphInfo:
    """Derived facts about a program's call structure."""

    graph: nx.DiGraph
    #: Functions on a call-graph cycle (self-recursive or mutually recursive).
    recursive: FrozenSet[str]
    #: Function -> all functions reachable from it (including itself).
    closure: Dict[str, FrozenSet[str]]
    #: Function -> variables its transitive closure writes by masked update.
    #: (Formals of recursive functions are excluded: they are bound by
    #: pushing a fresh stack frame, which protects the caller's value.)
    clobbers: Dict[str, FrozenSet[str]]


def analyze_call_graph(program: Program) -> CallGraphInfo:
    """Call edges, SCCs, and the recursive-function set of a program."""
    graph = nx.DiGraph()
    graph.add_nodes_from(program.functions)
    for fn in program.functions.values():
        for blk in fn.blocks:
            for op in blk.ops:
                if isinstance(op, CallOp):
                    graph.add_edge(fn.name, op.func)

    recursive: Set[str] = set()
    for scc in nx.strongly_connected_components(graph):
        if len(scc) > 1:
            recursive |= scc
        else:
            (node,) = scc
            if graph.has_edge(node, node):
                recursive.add(node)

    closure: Dict[str, FrozenSet[str]] = {
        name: frozenset(nx.descendants(graph, name) | {name})
        for name in program.functions
    }

    # Per-function update-clobbered variables: every op output in the body.
    # Formal parameters are only clobbered if the body reassigns them; the
    # frame push at call sites covers the binding itself (recursive callees),
    # and non-recursive callees' formals can never alias a caller's variables
    # after alpha-renaming.
    body_writes: Dict[str, Set[str]] = {}
    for fn in program.functions.values():
        writes: Set[str] = set()
        for blk in fn.blocks:
            for op in blk.ops:
                writes |= set(op_defs(op))
        if fn.name not in recursive:
            # Non-recursive formals are bound by masked update at call sites.
            writes |= set(fn.params)
        body_writes[fn.name] = writes

    clobbers: Dict[str, FrozenSet[str]] = {}
    for name in program.functions:
        acc: Set[str] = set()
        for callee in closure[name]:
            acc |= body_writes[callee]
        clobbers[name] = frozenset(acc)

    return CallGraphInfo(
        graph=graph,
        recursive=frozenset(recursive),
        closure=closure,
        clobbers=clobbers,
    )
