"""Static analyses shared by the lowering pipeline and the virtual machines.

* :mod:`repro.analysis.cfg` — successor/predecessor maps and orderings.
* :mod:`repro.analysis.liveness` — backward dataflow liveness, block-level
  and per-operation (used for call-site save sets and temporary detection).
* :mod:`repro.analysis.call_graph` — call graph, transitive closures, and
  recursion (cycle) detection, including mutual recursion.
* :mod:`repro.analysis.storage` — storage-class assignment implementing the
  paper's optimizations 2 (temporaries) and 3 (stack-free variables).
"""

from repro.analysis.cfg import predecessors, successors, reverse_postorder
from repro.analysis.liveness import (
    LivenessInfo,
    compute_liveness,
    call_save_sets,
    op_defs,
    op_uses,
)
from repro.analysis.call_graph import CallGraphInfo, analyze_call_graph
from repro.analysis.storage import StorageAssignment, assign_storage

__all__ = [
    "predecessors",
    "successors",
    "reverse_postorder",
    "LivenessInfo",
    "compute_liveness",
    "call_save_sets",
    "op_defs",
    "op_uses",
    "CallGraphInfo",
    "analyze_call_graph",
    "StorageAssignment",
    "assign_storage",
]
