"""Static analyses shared by the lowering pipeline and the virtual machines.

* :mod:`repro.analysis.cfg` — successor/predecessor maps and orderings.
* :mod:`repro.analysis.liveness` — backward dataflow liveness, block-level
  and per-operation (used for call-site save sets and temporary detection).
* :mod:`repro.analysis.call_graph` — call graph, transitive closures, and
  recursion (cycle) detection, including mutual recursion.
* :mod:`repro.analysis.storage` — storage-class assignment implementing the
  paper's optimizations 2 (temporaries) and 3 (stack-free variables).
* :mod:`repro.analysis.stackcheck` — static verification of lowered stack
  programs: abstract-interpretation stack-effect checking, exact depth
  bounds (:class:`ProgramFacts`), region-table validation.
* :mod:`repro.analysis.lint` — severity-ranked findings CLI
  (``python -m repro.analysis.lint <example|all>``).
"""

from repro.analysis.cfg import predecessors, successors, reverse_postorder
from repro.analysis.liveness import (
    LivenessInfo,
    compute_liveness,
    call_save_sets,
    op_defs,
    op_uses,
)
from repro.analysis.call_graph import CallGraphInfo, analyze_call_graph
from repro.analysis.storage import StorageAssignment, assign_storage
from repro.analysis.stackcheck import (
    Diagnostic,
    ProgramFacts,
    Severity,
    VerificationError,
    analyze_stack_program,
    verify_region_table,
    verify_stack_program,
)

__all__ = [
    "predecessors",
    "successors",
    "reverse_postorder",
    "LivenessInfo",
    "compute_liveness",
    "call_save_sets",
    "op_defs",
    "op_uses",
    "CallGraphInfo",
    "analyze_call_graph",
    "StorageAssignment",
    "assign_storage",
    "Diagnostic",
    "ProgramFacts",
    "Severity",
    "VerificationError",
    "analyze_stack_program",
    "verify_region_table",
    "verify_stack_program",
]
