"""Severity-ranked static diagnostics for autobatched programs.

::

    python -m repro.analysis.lint fib        # one example
    python -m repro.analysis.lint all        # the whole corpus
    python -m repro.analysis.lint --list     # available example names
    python -m repro.analysis.lint all --json # machine-readable findings

For each program the driver runs, over the *lowered* stack program, the
full :mod:`repro.analysis.stackcheck` verifier (structural checks, the
abstract-interpretation stack-effect/depth analysis, unreachable blocks,
uncalled functions, the bounded/unbounded depth verdict) plus region-table
validation of the statically selected superblocks; and, over the callable
IR, a dead-store pass driven by the existing liveness analysis.  Findings
print ranked by severity; the exit status is 1 iff any **error**-severity
finding exists (warnings and the unbounded-recursion verdict are advisory),
which is what the CI lint lane gates on.

The corpus is ``tests.programs.ALL_EXAMPLES`` when the test suite is
importable (run from the repository root); otherwise a small builtin
fallback corpus keeps the CLI self-contained.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Tuple

from repro.analysis.liveness import compute_liveness, op_defs
from repro.analysis.stackcheck import (
    Diagnostic,
    Severity,
    analyze_stack_program,
    region_diagnostics,
    sort_diagnostics,
)
from repro.ir.instructions import CallOp, ConstOp, PrimOp


def _builtin_corpus() -> Dict[str, Any]:
    """A minimal standalone corpus for running lint outside the repo root."""
    from repro import autobatch

    @autobatch
    def lint_fib(n):
        if n <= 1:
            return 1
        return lint_fib(n - 2) + lint_fib(n - 1)

    @autobatch
    def lint_gcd(a, b):
        while b > 0:
            t = b
            b = a % b
            a = t
        return a

    return {"lint_fib": lint_fib, "lint_gcd": lint_gcd}


def load_corpus() -> Dict[str, Any]:
    """Name -> AutobatchFunction for every lintable example."""
    try:
        from tests.programs import ALL_EXAMPLES
    except ImportError:
        return _builtin_corpus()
    return {name: fn for name, (fn, _inputs) in sorted(ALL_EXAMPLES.items())}


def _op_outputs(op) -> Tuple[str, ...]:
    outs = op_defs(op)
    if not outs and isinstance(op, ConstOp):
        outs = (op.output,)
    return outs


def _dead_store_diagnostics(fn: Any) -> List[Diagnostic]:
    """Writes whose value no later read observes, via the liveness analysis."""
    diags: List[Diagnostic] = []
    for func in fn.program.functions.values():
        live = compute_liveness(func)
        for blk in func.blocks:
            for i, op in enumerate(blk.ops):
                if not isinstance(op, (PrimOp, ConstOp, CallOp)):
                    continue
                outs = _op_outputs(op)
                if not outs:
                    continue
                after = live.live_after_op[(blk.label, i)]
                if not any(v in after for v in outs):
                    names = ", ".join(repr(v) for v in outs)
                    diags.append(
                        Diagnostic(
                            Severity.WARNING,
                            "dead-store",
                            f"{func.name}/{blk.label} op {i}: value of "
                            f"{names} is never read ({op})",
                            function=func.name,
                        )
                    )
    return diags


def lint_function(fn: Any, optimize: Any = True) -> List[Diagnostic]:
    """All findings for one autobatched function, severity-ranked."""
    from repro.backend.regions import select_regions

    stack_program = fn.stack_program(optimize)
    result = analyze_stack_program(stack_program)
    diags = list(result.diagnostics)
    diags.extend(
        region_diagnostics(
            stack_program, select_regions(stack_program), result.facts
        )
    )
    diags.extend(_dead_store_diagnostics(fn))
    return sort_diagnostics(diags)


def _finding_json(name: str, diag: Diagnostic) -> Dict[str, Any]:
    return {
        "program": name,
        "severity": str(diag.severity),
        "code": diag.code,
        "block": diag.block,
        "function": diag.function,
        "message": diag.message,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Static verification and lint over autobatched examples.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default="all",
        help="example name, or 'all' for the whole corpus (default)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print available example names"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON lines"
    )
    parser.add_argument(
        "-O0",
        dest="optimize",
        action="store_false",
        help="lint the unoptimized lowering",
    )
    args = parser.parse_args(argv)

    corpus = load_corpus()
    if args.list:
        print("\n".join(corpus))
        return 0
    if args.target == "all":
        selected = corpus
    elif args.target in corpus:
        selected = {args.target: corpus[args.target]}
    else:
        parser.error(
            f"unknown example {args.target!r}; known: {', '.join(corpus)}"
        )

    totals = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
    for name, fn in selected.items():
        findings = lint_function(fn, optimize=args.optimize)
        if args.json:
            for d in findings:
                print(json.dumps(_finding_json(name, d)))
        else:
            verdict = "clean" if not findings else f"{len(findings)} finding(s)"
            print(f"== {name}: {verdict}")
            for d in findings:
                print(f"   {d.format()}")
        for d in findings:
            totals[d.severity] += 1

    if not args.json:
        print(
            f"-- {len(selected)} program(s): {totals[Severity.ERROR]} error(s), "
            f"{totals[Severity.WARNING]} warning(s), {totals[Severity.INFO]} info"
        )
    return 1 if totals[Severity.ERROR] else 0


if __name__ == "__main__":
    sys.exit(main())
