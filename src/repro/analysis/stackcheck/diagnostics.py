"""Severity-ranked findings for the stack-program verifier and lint driver.

Every check in :mod:`repro.analysis.stackcheck` reports through
:class:`Diagnostic` so one finding format flows from the structural checks
(shared with :func:`repro.ir.validate.validate_stack_program`), through the
abstract interpreter, the region-table checker, and out of the
``python -m repro.analysis.lint`` CLI.  ``ERROR`` findings mean the program
(or region table) must not execute; ``WARNING``/``INFO`` findings are
advisory and never block plan compilation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


class Severity(enum.IntEnum):
    """Finding severity; higher values sort first in reports."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR", in messages
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One verifier/lint finding, anchored to a program location.

    ``code`` is a stable kebab-case identifier tests and CI gates match on;
    ``block`` is the pc (block index) the finding anchors to, when it has
    one; ``function`` names the enclosing function when known.
    """

    severity: Severity
    code: str
    message: str
    block: Optional[int] = None
    function: Optional[str] = None

    def format(self) -> str:
        where = []
        if self.function is not None:
            where.append(self.function)
        if self.block is not None:
            where.append(f"pc={self.block}")
        loc = f" [{'/'.join(where)}]" if where else ""
        return f"{self.severity}: {self.code}{loc}: {self.message}"

    def __str__(self) -> str:
        return self.format()


def sort_diagnostics(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Severity-ranked (errors first), then by location for determinism."""
    return sorted(
        diags,
        key=lambda d: (
            -int(d.severity),
            d.block if d.block is not None else -1,
            d.code,
            d.message,
        ),
    )


def errors_only(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diags if d.severity is Severity.ERROR]


class VerificationError(ValueError):
    """A stack program (or region table) failed static verification.

    Carries the full severity-ranked finding list; ``str()`` leads with the
    first error so ``pytest.raises(..., match=...)`` can target codes.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic], context: str = ""):
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(
            sort_diagnostics(diagnostics)
        )
        errors = errors_only(self.diagnostics)
        head = errors[0].format() if errors else "verification failed"
        extra = len(errors) - 1
        tail = f" (+{extra} more error{'s' if extra > 1 else ''})" if extra > 0 else ""
        prefix = f"{context}: " if context else ""
        super().__init__(f"{prefix}{head}{tail}")
