"""Structural well-formedness checks for the stack dialect.

This is the single shared implementation behind both
:func:`repro.ir.validate.validate_stack_program` (raising mode, used by the
lowering pipeline) and the deeper verifier in
:mod:`repro.analysis.stackcheck.verify` (collect mode, which refuses to run
the abstract interpretation over a structurally broken CFG).

Checked here, per block:

* only stack-dialect ops (``CallOp`` must not survive lowering);
* a terminator exists and is a stack-dialect terminator;
* every terminator target is a resolved integer in ``[0, exit_index]``;
* no direct ``Jump``/``Branch`` to the exit index (only the pc-stack bottom
  may name it — a direct jump would bypass ``Return``'s pop);
* neither ``PushJump`` target is the exit index (a call into the exit would
  never return; a return continuation at the exit would silently drop the
  caller's remaining work);

and per program: at least one block, and no duplicate block labels.
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import (
    Branch,
    CallOp,
    ConstOp,
    Jump,
    PopOp,
    PrimOp,
    PushJump,
    PushOp,
    Return,
    StackProgram,
)

from repro.analysis.stackcheck.diagnostics import Diagnostic, Severity


def _error(code: str, message: str, block=None) -> Diagnostic:
    return Diagnostic(Severity.ERROR, code, message, block=block)


def structural_diagnostics(program: StackProgram) -> List[Diagnostic]:
    """All structural findings for ``program`` (empty list = well-formed)."""
    diags: List[Diagnostic] = []
    n = len(program.blocks)
    exit_index = program.exit_index
    if n == 0:
        diags.append(_error("no-blocks", "stack program has no blocks"))
        return diags
    seen_labels = {}
    for i, blk in enumerate(program.blocks):
        prev = seen_labels.setdefault(blk.label, i)
        if prev != i:
            diags.append(
                _error(
                    "duplicate-label",
                    f"block label {blk.label!r} already used by block {prev}",
                    block=i,
                )
            )
        for op in blk.ops:
            if isinstance(op, CallOp):
                diags.append(
                    _error("call-survived", f"CallOp survived lowering: {op}", block=i)
                )
            elif not isinstance(op, (PrimOp, ConstOp, PushOp, PopOp)):
                diags.append(
                    _error("unknown-op", f"unknown operation {op!r}", block=i)
                )
        term = blk.terminator
        if term is None:
            diags.append(
                _error("missing-terminator", "missing terminator", block=i)
            )
            continue
        if isinstance(term, (Jump, Branch, PushJump)):
            for target in term.targets():
                if not isinstance(target, int) or isinstance(target, bool):
                    diags.append(
                        _error(
                            "unresolved-target",
                            f"unresolved target {target!r}",
                            block=i,
                        )
                    )
                    continue
                if not (0 <= target <= exit_index):
                    diags.append(
                        _error(
                            "target-out-of-range",
                            f"target {target} out of range [0, {exit_index}]",
                            block=i,
                        )
                    )
                    continue
                if target == exit_index:
                    if isinstance(term, PushJump):
                        what = (
                            "call target"
                            if target == term.jump_target
                            else "return target"
                        )
                        diags.append(
                            _error(
                                "pushjump-to-exit",
                                f"PushJump {what} is the exit index "
                                f"{exit_index}; calls must enter and return "
                                "through real blocks",
                                block=i,
                            )
                        )
                    else:
                        # Only the pc-stack bottom may name the exit index;
                        # direct jumps to it would bypass Return's pop.
                        diags.append(
                            _error(
                                "jump-to-exit",
                                f"direct jump to exit index {exit_index}",
                                block=i,
                            )
                        )
        elif isinstance(term, Return):
            pass
        else:
            diags.append(
                _error(
                    "unknown-terminator", f"unknown terminator {term!r}", block=i
                )
            )
    return diags
