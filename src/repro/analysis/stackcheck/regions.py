"""Region-table (superblock) validation against the verified CFG.

A :class:`~repro.backend.regions.RegionTable` is driven by profile data and
may be hand-built or carried over from an older program revision; a wrong
table would execute blocks out of CFG order under one dispatch.  This check
makes that impossible: every run must front its own entry block, every
consecutive pair must be a real terminator edge of the program being bound
(so side exits are exactly the remaining terminator targets, all of which
structural validation already proved are real block entries or the exit),
and — when :class:`~repro.analysis.stackcheck.verify.ProgramFacts` are
available — a reachable entry's run may only contain pcs the abstract
interpreter actually verified.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.instructions import Branch, Jump, PushJump, Return, StackProgram

from repro.analysis.stackcheck.diagnostics import (
    Diagnostic,
    Severity,
    VerificationError,
    errors_only,
)
from repro.analysis.stackcheck.verify import ProgramFacts


def _edge_targets(term) -> tuple:
    """The continuation pcs a run may legally step to from this terminator."""
    if isinstance(term, Jump):
        return (term.target,)
    if isinstance(term, Branch):
        return (term.true_target, term.false_target)
    if isinstance(term, PushJump):
        # Only the call edge continues the run; the return target is reached
        # dynamically through the callee's Return.
        return (term.jump_target,)
    return ()


def region_diagnostics(
    program: StackProgram, table, facts: Optional[ProgramFacts] = None
) -> List[Diagnostic]:
    """All findings for ``table`` against ``program`` (empty = valid)."""
    diags: List[Diagnostic] = []
    n = len(program.blocks)

    def err(code: str, message: str, block: Optional[int] = None) -> None:
        diags.append(Diagnostic(Severity.ERROR, code, message, block=block))

    chains = getattr(table, "chains", None)
    next_block = getattr(table, "next_block", None)
    if chains is None or next_block is None:
        err("region-shape", f"not a region table: {table!r}")
        return diags
    if len(chains) != n or len(next_block) != n:
        err(
            "region-shape",
            f"region table covers {len(chains)} entry blocks "
            f"(next_block: {len(next_block)}) for a {n}-block program",
        )
        return diags

    for i, chain in enumerate(chains):
        if not chain or chain[0] != i:
            err(
                "region-entry",
                f"run {i} must be fronted by its own entry block, got {chain!r}",
                block=i,
            )
            continue
        seen = set()
        broken = False
        for member in chain:
            if not isinstance(member, int) or not (0 <= member < n):
                err(
                    "region-member-range",
                    f"run {i} names pc {member!r}, outside [0, {n})",
                    block=i,
                )
                broken = True
                break
            if member in seen:
                err(
                    "region-member-repeat",
                    f"run {i} revisits pc {member}; a run is a simple path",
                    block=i,
                )
                broken = True
                break
            seen.add(member)
        if broken:
            continue
        for a, b in zip(chain, chain[1:]):
            term = program.blocks[a].terminator
            if isinstance(term, Return):
                err(
                    "region-past-return",
                    f"run {i} continues {a} -> {b} past a Return; the return "
                    "target is dynamic and cannot be part of a static run",
                    block=a,
                )
                break
            if b not in _edge_targets(term):
                err(
                    "region-bad-edge",
                    f"run {i} steps {a} -> {b} but block {a}'s terminator "
                    f"has no such edge in the CFG",
                    block=a,
                )
                break
        if facts is not None and facts.reachable(i):
            for member in chain:
                if not facts.reachable(member):
                    err(
                        "region-unverified-pc",
                        f"run {i} enters pc {member}, which verification "
                        "proved unreachable and left unverified",
                        block=member,
                    )
    return diags


def verify_region_table(
    program: StackProgram, table, facts: Optional[ProgramFacts] = None
) -> None:
    """Raise :class:`VerificationError` if ``table`` is invalid for ``program``."""
    diags = region_diagnostics(program, table, facts)
    if errors_only(diags):
        raise VerificationError(diags, context="region table")
