"""Abstract interpretation over the lowered stack-dialect CFG.

The verifier proves, before a :class:`~repro.ir.instructions.StackProgram`
ever executes, the invariants every downstream layer silently relies on:

**Stack-effect consistency.**  Within one function activation, the number of
frames a variable's stack holds above the activation's entry level is a
property of the *program point*, not of the path taken to reach it — the
same single-valuedness the batched machine needs for lanes at different call
depths to share masked steps at one pc.  The analysis runs a worklist over
each function's blocks with an abstract state mapping each variable to its
frame count *relative to the function entry* (the machine's real depths
differ per lane and per recursion level; the relative count is the
path-invariant).  A ``PushJump`` edge uses the callee's summary — calls are
net-zero on every variable stack (the verifier separately proves this for
each callee via its ``Return`` check) — so the state flows from the call
block straight to the return continuation.

Verified per program:

* every block joins with one consistent entry state (``depth-mismatch``);
* pops only consume frames pushed by the *current* activation
  (``pop-underflow`` — popping a caller's frame corrupts a different
  logical thread level);
* every ``Return`` sees all relative depths at zero (``unbalanced-return``
  — the callee summary, and lane halting, depend on it);
* push/pop only touch stack-backed variables (``stack-op-on-register``);
* the block partition is a real function partition: each block belongs to
  exactly one function entry (``shared-block``), and no ``Jump``/``Branch``
  crosses into another function's entry (``cross-function-jump``) — control
  transfers between functions only via ``PushJump``/``Return``.

**Exact depth bounds.**  For programs whose call graph is acyclic the
verifier computes the exact peak logical depth of every variable stack and
of the return-address stack — ``max(peak within f, max over call sites of
depth-at-call + callee peak)``, memoized over the call DAG — and exports
them in :class:`ProgramFacts`.  ``required_stack_depth`` is the proven
``max_stack_depth`` (the machine's D): batched stacks pre-size from it
instead of guessing, and snapshot restores are admission-checked against
it.  A recursive program gets the honest ``unbounded`` verdict
(``required_stack_depth is None``) rather than a wrong number — its depth
is input-dependent, which is the paper's headline capability, not an error.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir.instructions import (
    Branch,
    Jump,
    PopOp,
    PushJump,
    PushOp,
    Return,
    StackProgram,
    VarKind,
)

from repro.analysis.stackcheck.diagnostics import (
    Diagnostic,
    Severity,
    VerificationError,
    errors_only,
    sort_diagnostics,
)
from repro.analysis.stackcheck.structural import structural_diagnostics


def _normalize(state: Dict[str, int]) -> Dict[str, int]:
    """Drop zero entries so states compare by their live frame counts."""
    return {v: d for v, d in state.items() if d != 0}


@dataclass(frozen=True)
class ProgramFacts:
    """What static verification proved about one lowered program.

    Cached on the :class:`~repro.vm.executors.ExecutionPlan` (verify once
    per plan, zero steady-state overhead) and consumed by the machine layer:
    stack pre-sizing from :attr:`required_stack_depth`, snapshot admission
    via :meth:`check_snapshot_frames`, and region-table checking in
    :mod:`repro.analysis.stackcheck.regions`.  This artifact is also the
    seam for GPU-width device-buffer pre-sizing and snapshot-spilling
    admission control (ROADMAP items 2 and 5).
    """

    num_blocks: int
    #: Per block: the pc of the function entry that owns it (None when the
    #: block is unreachable from every entry and therefore unverified).
    function_entry: Tuple[Optional[int], ...]
    #: Per block: variable -> frames held above the owning activation's
    #: entry level on entry to the block (only nonzero counts are listed;
    #: None for unverified blocks).  Single-valued by construction — the
    #: verifier rejects programs where two paths disagree.
    entry_depths: Tuple[Optional[Mapping[str, int]], ...]
    #: Function entry pcs in ascending order ({0} plus every call target).
    entries: Tuple[int, ...]
    #: Distinct (caller entry, callee entry) edges, callers reachable or not.
    call_edges: Tuple[Tuple[int, int], ...]
    #: Entry pc -> source-function name, where metadata names one.
    function_names: Mapping[int, str] = field(default_factory=dict)
    #: True when the reachable call graph has a cycle (depth is then
    #: input-dependent and the bound fields below are None).
    recursive: bool = False
    #: Peak saved-frame count per variable stack across a whole main
    #: activation (empty for unbounded programs).
    var_peaks: Mapping[str, int] = field(default_factory=dict)
    #: Peak saved-frame count of the return-address stack (None: unbounded).
    max_addr_depth: Optional[int] = None
    #: Peak *logical* depth (saved frames + the live top) over every stack
    #: in the machine, exactly as instrumented high-water marks observe it.
    max_logical_depth: Optional[int] = None
    #: The proven machine ``max_stack_depth`` (D): the smallest depth limit
    #: no execution of this program can overflow.  None when unbounded.
    required_stack_depth: Optional[int] = None

    @property
    def bounded(self) -> bool:
        return self.required_stack_depth is not None

    def reachable(self, block: int) -> bool:
        """Was ``block`` verified (reachable from some function entry)?"""
        return self.function_entry[block] is not None

    def check_snapshot_frames(self, saved_frames: int, available_depth: int) -> None:
        """Admission check for restoring ``saved_frames`` into depth-D stacks.

        Raises ``ValueError`` when the snapshot claims more frames than this
        program can ever produce — a corrupt or foreign snapshot that the
        depth check alone might admit on a deep machine.
        """
        bound = self.required_stack_depth
        if bound is not None and saved_frames > bound:
            raise ValueError(
                f"snapshot holds {saved_frames} saved frames but verification "
                f"proved this program never exceeds {bound}; refusing a "
                "snapshot this program cannot have produced"
            )


@dataclass(frozen=True)
class StackCheckResult:
    """Facts (when derivable) plus the severity-ranked finding list."""

    facts: Optional[ProgramFacts]
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        return not errors_only(self.diagnostics)


def analyze_stack_program(program: StackProgram) -> StackCheckResult:
    """Run every check, collecting findings instead of raising.

    Structural errors abort the deeper analysis (``facts`` is None); the
    abstract interpretation otherwise always produces facts, with the bound
    fields None when an error or recursion prevents a sound bound.
    """
    diags = list(structural_diagnostics(program))
    if errors_only(diags):
        return StackCheckResult(facts=None, diagnostics=tuple(sort_diagnostics(diags)))
    facts = _abstract_interpret(program, diags)
    return StackCheckResult(facts=facts, diagnostics=tuple(sort_diagnostics(diags)))


def verify_stack_program(program: StackProgram, context: str = "stack program") -> ProgramFacts:
    """Verify ``program`` or raise :class:`VerificationError`.

    Returns the proven :class:`ProgramFacts` on success; warnings and info
    findings (unreachable blocks, the unbounded-recursion verdict) do not
    fail verification — only errors do.
    """
    result = analyze_stack_program(program)
    if not result.ok or result.facts is None:
        raise VerificationError(result.diagnostics, context=context)
    return result.facts


# -- the abstract interpreter -------------------------------------------------


def _function_name(program: StackProgram, entry: int) -> str:
    for name, pc in program.function_entries.items():
        if pc == entry:
            return name
    return f"fn@{entry}"


def _abstract_interpret(program: StackProgram, diags: List[Diagnostic]) -> ProgramFacts:
    blocks = program.blocks
    n = len(blocks)

    # Function entries are block 0 (main) plus every call target; the
    # partition is derived from the CFG itself, not trusted from metadata,
    # so hand-built programs verify and stale metadata cannot mask errors.
    entries = {0}
    for blk in blocks:
        if isinstance(blk.terminator, PushJump):
            entries.add(blk.terminator.jump_target)
    entry_list = sorted(entries)
    names = {e: _function_name(program, e) for e in entry_list}

    owner: Dict[int, int] = {}
    entry_state: Dict[int, Dict[str, int]] = {}
    # Per function: peak saved-frame count per variable within one
    # activation, excluding frames held across calls (added via call edges).
    own_peaks: Dict[int, Dict[str, int]] = {e: {} for e in entry_list}
    # Per function: (callee entry, state at the call block's end) per site.
    call_sites: Dict[int, List[Tuple[int, Dict[str, int]]]] = {e: [] for e in entry_list}
    sound = True  # bounds are only claimed when no depth error was found

    def err(code: str, message: str, block: int, fn: int) -> None:
        diags.append(
            Diagnostic(Severity.ERROR, code, message, block=block, function=names[fn])
        )

    for e in entry_list:
        if e in owner:
            # Claimed while walking an earlier function: already reported
            # as a cross-function jump or shared block.
            continue
        owner[e] = e
        entry_state[e] = {}
        work = deque([e])
        while work:
            b = work.popleft()
            state = dict(entry_state[b])
            peaks = own_peaks[e]
            aborted = False
            for op in blocks[b].ops:
                if isinstance(op, PushOp):
                    if program.kind(op.output) is not VarKind.STACKED:
                        err(
                            "stack-op-on-register",
                            f"push of non-stacked variable {op.output!r}",
                            b,
                            e,
                        )
                        sound = False
                    depth = state.get(op.output, 0) + 1
                    state[op.output] = depth
                    if depth > peaks.get(op.output, 0):
                        peaks[op.output] = depth
                elif isinstance(op, PopOp):
                    if program.kind(op.var) is not VarKind.STACKED:
                        err(
                            "stack-op-on-register",
                            f"pop of non-stacked variable {op.var!r}",
                            b,
                            e,
                        )
                        sound = False
                    depth = state.get(op.var, 0)
                    if depth <= 0:
                        err(
                            "pop-underflow",
                            f"pop of {op.var!r} underflows this activation: "
                            "no frame pushed since function entry remains "
                            "(it would consume a caller's frame)",
                            b,
                            e,
                        )
                        sound = False
                        aborted = True
                        break
                    state[op.var] = depth - 1
            if aborted:
                continue  # don't propagate a known-broken state

            term = blocks[b].terminator

            def flow(target: int, out_state: Dict[str, int]) -> None:
                nonlocal sound
                if target in entries and target != e:
                    err(
                        "cross-function-jump",
                        f"jumps into {names[target]!r} (entry pc {target}) "
                        "without a PushJump; the callee's Return would pop "
                        "a frame this path never pushed",
                        b,
                        e,
                    )
                    sound = False
                    return
                prev_owner = owner.get(target)
                if prev_owner is None:
                    owner[target] = e
                    entry_state[target] = dict(out_state)
                    work.append(target)
                elif prev_owner != e:
                    err(
                        "shared-block",
                        f"block {target} is reachable from function entries "
                        f"{prev_owner} and {e}; every pc must belong to "
                        "exactly one function",
                        b,
                        e,
                    )
                    sound = False
                else:
                    prev = _normalize(entry_state[target])
                    here = _normalize(out_state)
                    if prev != here:
                        disagree = sorted(
                            v
                            for v in set(prev) | set(here)
                            if prev.get(v, 0) != here.get(v, 0)
                        )
                        v = disagree[0]
                        err(
                            "depth-mismatch",
                            f"block {target} is entered with inconsistent "
                            f"stack depths: {v!r} holds {prev.get(v, 0)} "
                            f"frame(s) along one path but {here.get(v, 0)} "
                            "along another — the per-pc entry depth must be "
                            "single-valued",
                            b,
                            e,
                        )
                        sound = False

            if isinstance(term, Jump):
                flow(term.target, state)
            elif isinstance(term, Branch):
                flow(term.true_target, state)
                flow(term.false_target, state)
            elif isinstance(term, PushJump):
                call_sites[e].append((term.jump_target, dict(state)))
                # Calls are net-zero on every variable stack (proven by the
                # callee's own unbalanced-return check), so the state flows
                # unchanged to the return continuation.
                flow(term.return_target, state)
            elif isinstance(term, Return):
                unbalanced = sorted(v for v, d in state.items() if d != 0)
                if unbalanced:
                    v = unbalanced[0]
                    err(
                        "unbalanced-return",
                        f"return with {state[v]:+d} net frame(s) on "
                        f"{v!r} (and {len(unbalanced) - 1} more)"
                        if len(unbalanced) > 1
                        else f"return with {state[v]:+d} net frame(s) on {v!r}; "
                        "every path from entry to return must balance its "
                        "pushes and pops",
                        b,
                        e,
                    )
                    sound = False

    # Unreachable blocks never execute (pcs only arise from verified
    # terminator targets and same-program snapshots) but are dead weight
    # and stay unverified — surface them.
    for b in range(n):
        if b not in owner:
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    "unreachable-block",
                    f"block {b} ({blocks[b].label!r}) is unreachable from "
                    "every function entry and was not verified",
                    block=b,
                )
            )

    # -- call graph: reachability from main, cycles, depth bounds ----------
    edges = sorted({(e, callee) for e in entry_list for callee, _ in call_sites[e]})
    reachable_fns = {0}
    frontier = [0]
    while frontier:
        f = frontier.pop()
        for callee, _ in call_sites.get(f, ()):
            if callee not in reachable_fns:
                reachable_fns.add(callee)
                frontier.append(callee)
    for e in entry_list:
        if e not in reachable_fns:
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    "uncalled-function",
                    f"function {names[e]!r} (entry pc {e}) is never called "
                    "on any path from main",
                    block=e,
                    function=names[e],
                )
            )

    recursive = _has_cycle(reachable_fns, call_sites)
    var_peaks: Dict[str, int] = {}
    max_addr = max_logical = required = None
    if recursive:
        cycle_names = sorted(names[e] for e in reachable_fns)
        diags.append(
            Diagnostic(
                Severity.INFO,
                "depth-unbounded",
                "recursive call graph: the stack depth is input-dependent, "
                f"so no static bound exists (functions: {cycle_names}); "
                "machines fall back to the configured max_stack_depth",
                block=0,
                function=names[0],
            )
        )
    elif sound:
        addr_memo: Dict[int, int] = {}
        var_memo: Dict[int, Dict[str, int]] = {}

        def bound(f: int) -> Tuple[int, Dict[str, int]]:
            if f in addr_memo:
                return addr_memo[f], var_memo[f]
            addr = 0
            peaks = dict(own_peaks[f])
            for callee, at_call in call_sites[f]:
                c_addr, c_peaks = bound(callee)
                # The pushed return address is held for the whole callee
                # activation: one saved frame plus the callee's own peak.
                addr = max(addr, 1 + c_addr)
                for v, d in c_peaks.items():
                    depth = at_call.get(v, 0) + d
                    if depth > peaks.get(v, 0):
                        peaks[v] = depth
                for v, d in at_call.items():
                    # Frames held across a call even if the callee never
                    # touches that variable's stack.
                    if d > peaks.get(v, 0):
                        peaks[v] = d
            addr_memo[f] = addr
            var_memo[f] = peaks
            return addr, peaks

        max_addr, var_peaks = bound(0)
        peak_saved = max([max_addr, *var_peaks.values()])
        max_logical = peak_saved + 1  # the implicit base frame
        # D must cover the deepest saved-frame count; D=0 stacks exist but
        # a floor of 1 keeps the base-frame arithmetic uniform.
        required = max(1, peak_saved)

    entry_depth_facts: List[Optional[Mapping[str, int]]] = []
    fn_of: List[Optional[int]] = []
    for b in range(n):
        if b in owner:
            fn_of.append(owner[b])
            entry_depth_facts.append(_normalize(entry_state[b]))
        else:
            fn_of.append(None)
            entry_depth_facts.append(None)

    return ProgramFacts(
        num_blocks=n,
        function_entry=tuple(fn_of),
        entry_depths=tuple(entry_depth_facts),
        entries=tuple(entry_list),
        call_edges=tuple(edges),
        function_names=names,
        recursive=recursive,
        var_peaks=var_peaks,
        max_addr_depth=max_addr,
        max_logical_depth=max_logical,
        required_stack_depth=required,
    )


def _has_cycle(
    reachable: set, call_sites: Mapping[int, Sequence[Tuple[int, Dict[str, int]]]]
) -> bool:
    """Cycle detection over the reachable call graph (iterative DFS)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {f: WHITE for f in reachable}
    for root in sorted(reachable):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, i = stack[-1]
            callees = [c for c, _ in call_sites.get(node, ())]
            if i < len(callees):
                stack[-1] = (node, i + 1)
                nxt = callees[i]
                if nxt not in color:
                    continue
                if color[nxt] == GRAY:
                    return True
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return False
