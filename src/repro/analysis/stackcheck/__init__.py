"""Static verification of lowered stack programs.

* :mod:`~repro.analysis.stackcheck.structural` — shared structural checks
  (one implementation behind ``validate_stack_program`` and the verifier).
* :mod:`~repro.analysis.stackcheck.verify` — the abstract interpreter:
  stack-effect consistency, per-pc entry depths, exact depth bounds or an
  honest ``unbounded`` verdict, exported as :class:`ProgramFacts`.
* :mod:`~repro.analysis.stackcheck.regions` — superblock region tables
  checked against the verified CFG.
* :mod:`repro.analysis.lint` — the CLI driver
  (``python -m repro.analysis.lint <example|all>``).
"""

from repro.analysis.stackcheck.diagnostics import (
    Diagnostic,
    Severity,
    VerificationError,
    errors_only,
    sort_diagnostics,
)
from repro.analysis.stackcheck.structural import structural_diagnostics
from repro.analysis.stackcheck.verify import (
    ProgramFacts,
    StackCheckResult,
    analyze_stack_program,
    verify_stack_program,
)
from repro.analysis.stackcheck.regions import (
    region_diagnostics,
    verify_region_table,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "VerificationError",
    "errors_only",
    "sort_diagnostics",
    "structural_diagnostics",
    "ProgramFacts",
    "StackCheckResult",
    "analyze_stack_program",
    "verify_stack_program",
    "region_diagnostics",
    "verify_region_table",
]
