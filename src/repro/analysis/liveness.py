"""Backward dataflow liveness on callable-IR functions.

Liveness drives two of the paper's Section 3 optimizations:

* **Temporaries** (optimization 2): a variable that is never live across a
  block boundary *or across a function call* exists only inside one basic
  block execution and bypasses the batching machinery entirely.  (Calls count
  as boundaries because lowering splits blocks at every ``CallOp``.)

* **Save sets** (caller-saves discipline, optimization 1): at each call site
  the caller must preserve exactly the variables that are live after the call
  and may be clobbered by the (transitive) callee — which is only possible
  under recursion, since every function's locals are alpha-renamed apart.

``Return`` terminators use the function's declared output variables, so
results are automatically live at function exits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.cfg import reverse_postorder, successors
from repro.ir.instructions import (
    Block,
    Branch,
    CallOp,
    ConstOp,
    Function,
    PrimOp,
    Return,
)


def op_uses(op) -> Tuple[str, ...]:
    """Variable names an operation reads."""
    return tuple(getattr(op, "inputs", ()))


def op_defs(op) -> Tuple[str, ...]:
    """Variable names an operation writes."""
    return tuple(getattr(op, "outputs", ()))


def _terminator_uses(fn: Function, block: Block) -> Tuple[str, ...]:
    term = block.terminator
    if isinstance(term, Branch):
        return (term.cond,)
    if isinstance(term, Return):
        return tuple(fn.outputs)
    return ()


@dataclass
class LivenessInfo:
    """Result of liveness analysis on one function."""

    live_in: Dict[str, FrozenSet[str]]
    live_out: Dict[str, FrozenSet[str]]
    #: (block label, op index) -> variables live immediately *after* that op.
    live_after_op: Dict[Tuple[str, int], FrozenSet[str]]

    def live_across_blocks(self) -> FrozenSet[str]:
        """Variables live at some block entry (i.e. across a block boundary)."""
        out: Set[str] = set()
        for vs in self.live_in.values():
            out |= vs
        return frozenset(out)

    def live_across_calls(self, fn: Function) -> FrozenSet[str]:
        """Variables live immediately after some ``CallOp``."""
        out: Set[str] = set()
        for blk in fn.blocks:
            for i, op in enumerate(blk.ops):
                if isinstance(op, CallOp):
                    out |= self.live_after_op[(blk.label, i)]
        return frozenset(out)


def compute_liveness(fn: Function) -> LivenessInfo:
    """Standard backward may-liveness, to fixpoint."""
    succ = successors(fn)
    order = reverse_postorder(fn)  # iterate in postorder for backward flow
    gen: Dict[str, Set[str]] = {}
    kill: Dict[str, Set[str]] = {}
    for blk in fn.blocks:
        g: Set[str] = set()
        k: Set[str] = set()
        for op in blk.ops:
            for v in op_uses(op):
                if v not in k:
                    g.add(v)
            for v in op_defs(op):
                k.add(v)
        for v in _terminator_uses(fn, blk):
            if v not in k:
                g.add(v)
        gen[blk.label] = g
        kill[blk.label] = k

    live_in: Dict[str, Set[str]] = {b.label: set() for b in fn.blocks}
    live_out: Dict[str, Set[str]] = {b.label: set() for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for label in reversed(order):
            out: Set[str] = set()
            for s in succ[label]:
                out |= live_in[s]
            inn = gen[label] | (out - kill[label])
            if out != live_out[label] or inn != live_in[label]:
                live_out[label] = out
                live_in[label] = inn
                changed = True

    # Per-op liveness: walk each block backward from live_out.
    live_after_op: Dict[Tuple[str, int], FrozenSet[str]] = {}
    for blk in fn.blocks:
        live: Set[str] = set(live_out[blk.label])
        live |= set(_terminator_uses(fn, blk))
        for i in range(len(blk.ops) - 1, -1, -1):
            op = blk.ops[i]
            live_after_op[(blk.label, i)] = frozenset(live)
            live -= set(op_defs(op))
            live |= set(op_uses(op))

    return LivenessInfo(
        live_in={k: frozenset(v) for k, v in live_in.items()},
        live_out={k: frozenset(v) for k, v in live_out.items()},
        live_after_op=live_after_op,
    )


def call_save_sets(
    fn: Function,
    liveness: LivenessInfo,
    clobbers: Dict[str, FrozenSet[str]],
) -> Dict[Tuple[str, int], FrozenSet[str]]:
    """Caller-saves set for every call site in ``fn``.

    ``clobbers`` maps callee name -> set of variables the callee's transitive
    closure writes in place (by masked update).  The save set is the
    intersection of that with the variables live after the call, minus the
    call's own outputs (whose pre-call values are dead by definition).
    Formals of recursive callees are bound by *pushing a fresh frame*, which
    protects the caller's value automatically, so they never appear in
    ``clobbers``.
    """
    saves: Dict[Tuple[str, int], FrozenSet[str]] = {}
    for blk in fn.blocks:
        for i, op in enumerate(blk.ops):
            if not isinstance(op, CallOp):
                continue
            live_after = liveness.live_after_op[(blk.label, i)]
            clobber = clobbers.get(op.func, frozenset())
            saves[(blk.label, i)] = frozenset(
                (live_after - set(op.outputs)) & clobber
            )
    return saves


def definitely_assigned_check(fn: Function) -> List[str]:
    """Report variables that may be read before assignment on some path.

    Forward must-analysis: a use is suspicious if the variable is not
    definitely assigned on every path reaching it.  Plain Python would raise
    ``UnboundLocalError`` for these; under batching they would silently read
    a stale activation's value, so the pipeline rejects them.
    """
    succ = successors(fn)
    order = reverse_postorder(fn)
    all_vars = set(fn.variables())
    entry = fn.blocks[0].label
    assigned_in: Dict[str, Set[str]] = {b.label: set(all_vars) for b in fn.blocks}
    assigned_in[entry] = set(fn.params)
    preds: Dict[str, List[str]] = {b.label: [] for b in fn.blocks}
    for b in fn.blocks:
        for t in (b.terminator.targets() if b.terminator else ()):
            preds[t].append(b.label)

    def block_out(label: str) -> Set[str]:
        out = set(assigned_in[label])
        for op in fn.block(label).ops:
            out |= set(op_defs(op))
        return out

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            if preds[label]:
                inn = set(all_vars)
                for p in preds[label]:
                    inn &= block_out(p)
            else:
                inn = set(fn.params)
            if inn != assigned_in[label]:
                assigned_in[label] = inn
                changed = True

    problems: List[str] = []
    for blk in fn.blocks:
        have = set(assigned_in[blk.label])
        for op in blk.ops:
            for v in op_uses(op):
                if v not in have:
                    problems.append(
                        f"{fn.name}/{blk.label}: {v!r} may be used before assignment"
                    )
            have |= set(op_defs(op))
        for v in _terminator_uses(fn, blk):
            if v not in have:
                problems.append(
                    f"{fn.name}/{blk.label}: {v!r} may be used before assignment "
                    "(at terminator)"
                )
    return problems
