"""Strategy-agnostic driver for one autobatched NUTS run.

:class:`NutsKernel` owns the compiled program family for one target and runs
``nuts_chain`` under any of the paper's execution strategies:

``reference``
    Plain Python, one batch member at a time (Figure 5's "Eager mode
    without autobatching" baseline).
``local``
    Algorithm 1 — local static autobatching, recursion on the Python stack
    (the "TF Eager" line).
``hybrid``
    Algorithm 1 control with each block's straight-line primitive runs
    pre-compiled into single fused dispatches (the paper's third tested
    form: "control in Eager, basic blocks compiled with XLA").
``pc``
    Algorithm 2 — program-counter autobatching, per-op kernel dispatch.
``pc_fused``
    Algorithm 2 with every basic block pre-compiled into a single fused
    callable (the "compiled entirely with XLA" line).
``pc_noopt``
    Algorithm 2 with the lowering optimizations disabled (ablation).

All strategies consume identical per-member RNG streams, so they produce
bit-identical chains — the differential tests rely on this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.frontend.primitives import make_counters
from repro.frontend.registry import PrimitiveRegistry
from repro.nuts.tree import NutsFunctions, make_nuts_functions
from repro.targets.base import Target
from repro.vm.instrumentation import Instrumentation

#: Execution strategies understood by :meth:`NutsKernel.run`.
KERNEL_STRATEGIES = ("reference", "local", "hybrid", "pc", "pc_fused", "pc_noopt")

#: Block-executor selection for the program-counter strategies: the machine
#: is identical, only the :class:`~repro.vm.executors.ExecutionPlan` differs.
PC_STRATEGY_EXECUTORS = {"pc": "eager", "pc_noopt": "eager", "pc_fused": "fused"}


@dataclass
class NutsResult:
    """Outcome of one batched NUTS run."""

    positions: np.ndarray        #: final states, shape (Z, dim)
    grad_evals: np.ndarray       #: per-member useful gradient evaluations, (Z,)
    rng: np.ndarray              #: final RNG counters, (Z,)
    strategy: str
    wall_time: float             #: seconds spent inside the run call
    instrumentation: Optional[Instrumentation] = None

    @property
    def total_grad_evals(self) -> float:
        """Total useful gradients across all chains (Figure 5's numerator)."""
        return float(np.sum(self.grad_evals))

    def gradients_per_second(self) -> float:
        """Throughput in useful gradient evaluations per second."""
        return self.total_grad_evals / self.wall_time if self.wall_time > 0 else 0.0


class NutsKernel:
    """Compiled NUTS programs for one target, runnable under every strategy."""

    def __init__(self, target: Target, registry: Optional[PrimitiveRegistry] = None):
        self.target = target
        self.registry = registry
        self.functions: NutsFunctions = make_nuts_functions(target, registry)

    def initial_rng(self, batch_size: int, seed: int = 0) -> np.ndarray:
        """Independent per-member RNG counters."""
        return make_counters(seed, batch_size)

    def plan(self, strategy: str = "pc"):
        """The :class:`~repro.vm.executors.ExecutionPlan` a PC strategy runs.

        The bench harnesses use this for plan-derived dispatch accounting
        in the device cost models.
        """
        if strategy not in PC_STRATEGY_EXECUTORS:
            raise ValueError(
                f"strategy {strategy!r} does not run on the program-counter "
                f"machine; expected one of {sorted(PC_STRATEGY_EXECUTORS)}"
            )
        return self.functions.nuts_chain.execution_plan(
            executor=PC_STRATEGY_EXECUTORS[strategy],
            optimize=(strategy != "pc_noopt"),
        )

    def run(
        self,
        q0: np.ndarray,
        *,
        step_size: float,
        n_trajectories: int = 1,
        max_depth: int = 6,
        n_leapfrog: int = 4,
        seed: int = 0,
        strategy: str = "pc",
        mode: str = "mask",
        scheduler: str = "earliest",
        instrument: bool = False,
        max_stack_depth: Optional[int] = None,
        rng: Optional[np.ndarray] = None,
    ) -> NutsResult:
        """Run ``n_trajectories`` NUTS transitions from each row of ``q0``.

        ``step_size`` may be a scalar or a per-member array.  Returns the
        final positions plus the bookkeeping Figures 5 and 6 need.
        """
        if strategy not in KERNEL_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {KERNEL_STRATEGIES}"
            )
        q0 = np.atleast_2d(np.asarray(q0, dtype=np.float64))
        z = q0.shape[0]
        if q0.shape[1] != self.target.dim:
            raise ValueError(
                f"q0 has event size {q0.shape[1]}, target has dim {self.target.dim}"
            )
        eps = np.broadcast_to(np.asarray(step_size, dtype=np.float64), (z,)).copy()
        md = np.full(z, float(max_depth))
        ns = np.full(z, float(n_leapfrog))
        nt = np.full(z, float(n_trajectories))
        ng = np.zeros(z)
        ctr = self.initial_rng(z, seed) if rng is None else np.asarray(rng, dtype=np.uint64)
        inputs = (q0, eps, md, ns, nt, ng, ctr)
        if max_stack_depth is None:
            # nuts_chain -> nuts_step -> build_tree^(max_depth) -> leaf,
            # plus headroom for the entry frame and caller saves.
            max_stack_depth = max_depth + 8

        chain = self.functions.nuts_chain
        instrumentation = Instrumentation(batch_size=z) if instrument else None

        start = time.perf_counter()
        if strategy == "reference":
            out = chain.run_reference(*inputs)
        elif strategy in ("local", "hybrid"):
            out = chain.run_local(
                *inputs,
                mode=mode,
                scheduler=scheduler,
                instrumentation=instrumentation,
                fuse_blocks=(strategy == "hybrid"),
            )
        else:  # pc / pc_noopt / pc_fused: one machine, per-strategy plan
            out = chain.run_pc(
                *inputs,
                optimize=(strategy != "pc_noopt"),
                executor=PC_STRATEGY_EXECUTORS[strategy],
                mode=mode,
                scheduler=scheduler,
                max_stack_depth=max_stack_depth,
                instrumentation=instrumentation,
            )
        wall = time.perf_counter() - start

        q_final, grad_evals, rng_final = out
        return NutsResult(
            positions=np.asarray(q_final),
            grad_evals=np.asarray(grad_evals),
            rng=np.asarray(rng_final),
            strategy=strategy,
            wall_time=wall,
            instrumentation=instrumentation,
        )
