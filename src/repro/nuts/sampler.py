"""High-level multi-chain NUTS driver covering every Figure 5 strategy.

:func:`run_nuts` is the one-call entry point the examples and the benchmark
harness use.  It accepts the kernel strategies of
:class:`~repro.nuts.kernel.NutsKernel` plus ``"stan"`` (the iterative
single-chain baseline) and returns final states, per-member sample traces
when requested, gradient-evaluation counts, and wall time.

An optional dual-averaging step-size adaptation (Hoffman & Gelman
Section 3.2) is provided as an extension — the paper-faithful benchmarks
leave it off and use fixed step sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.nuts.iterative import IterativeNuts
from repro.nuts.kernel import KERNEL_STRATEGIES, NutsKernel, NutsResult
from repro.targets.base import Target

#: All strategies accepted by :func:`run_nuts`.
STRATEGIES = KERNEL_STRATEGIES + ("stan",)


@dataclass
class ChainResult:
    """Multi-trajectory sampling outcome."""

    positions: np.ndarray                 #: final states, (Z, dim)
    samples: Optional[np.ndarray]         #: per-trajectory states (T, Z, dim) if traced
    grad_evals: float                     #: total useful gradient evaluations
    wall_time: float
    strategy: str
    extras: Dict[str, object] = field(default_factory=dict)

    def gradients_per_second(self) -> float:
        """Throughput in useful gradient evaluations per second."""
        return self.grad_evals / self.wall_time if self.wall_time > 0 else 0.0


def run_nuts(
    target: Target,
    batch_size: int,
    n_trajectories: int,
    step_size: float,
    *,
    strategy: str = "pc",
    max_depth: int = 6,
    n_leapfrog: int = 4,
    seed: int = 0,
    trace: bool = False,
    kernel: Optional[NutsKernel] = None,
    q0: Optional[np.ndarray] = None,
    **kernel_options,
) -> ChainResult:
    """Run ``batch_size`` NUTS chains for ``n_trajectories`` transitions.

    With ``trace=True`` the per-trajectory states are recorded (the batched
    strategies then synchronize on trajectory boundaries, which is what the
    diagnostics consumers want; throughput benchmarking should leave
    ``trace=False`` so the program-counter machine can batch across
    trajectories).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    if q0 is None:
        q0 = target.initial_state(batch_size, seed=seed)
    q0 = np.atleast_2d(np.asarray(q0, dtype=np.float64))

    if strategy == "stan":
        sampler = IterativeNuts(
            target, step_size, max_depth=max_depth, n_leapfrog=n_leapfrog
        )
        start = time.perf_counter()
        if trace:
            samples = np.empty((n_trajectories, batch_size, target.dim))
            total = 0
            for b in range(batch_size):
                result = sampler.sample(q0[b], n_trajectories, seed=seed + b)
                samples[:, b, :] = result.positions
                total += result.grad_evals
            finals = samples[-1]
        else:
            finals, total = sampler.sample_batch(q0, n_trajectories, seed=seed)
            samples = None
        wall = time.perf_counter() - start
        return ChainResult(
            positions=finals,
            samples=samples,
            grad_evals=float(total),
            wall_time=wall,
            strategy=strategy,
        )

    kernel = kernel or NutsKernel(target)
    common = dict(
        step_size=step_size,
        max_depth=max_depth,
        n_leapfrog=n_leapfrog,
        strategy=strategy,
        **kernel_options,
    )
    start = time.perf_counter()
    if trace:
        samples = np.empty((n_trajectories, batch_size, target.dim))
        rng = kernel.initial_rng(batch_size, seed)
        q = q0
        total = 0.0
        result: Optional[NutsResult] = None
        for t in range(n_trajectories):
            result = kernel.run(q, n_trajectories=1, rng=rng, **common)
            q = result.positions
            rng = result.rng
            total += result.total_grad_evals
            samples[t] = q
        wall = time.perf_counter() - start
        return ChainResult(
            positions=q,
            samples=samples,
            grad_evals=total,
            wall_time=wall,
            strategy=strategy,
            extras={"instrumentation": result.instrumentation if result else None},
        )
    result = kernel.run(q0, n_trajectories=n_trajectories, seed=seed, **common)
    wall = time.perf_counter() - start
    return ChainResult(
        positions=result.positions,
        samples=None,
        grad_evals=result.total_grad_evals,
        wall_time=wall,
        strategy=strategy,
        extras={"instrumentation": result.instrumentation},
    )


def find_reasonable_step_size(
    target: Target, q0: np.ndarray, seed: int = 0
) -> float:
    """Heuristic initial step size (Hoffman & Gelman Algorithm 4).

    Doubles/halves the step until the one-step acceptance probability
    crosses 0.5.  Single-example, plain numpy — used by examples to pick a
    sane ``step_size`` for unfamiliar targets.
    """
    from repro.nuts.leapfrog import leapfrog

    rng = np.random.RandomState(seed)
    q0 = np.asarray(q0, dtype=np.float64)
    eps = 1.0
    p0 = rng.randn(target.dim)
    joint0 = float(target.log_prob(q0) - 0.5 * np.dot(p0, p0))

    def log_accept(eps: float) -> float:
        q1, p1 = leapfrog(q0, p0, eps, target.grad_log_prob, n_steps=1)
        joint1 = float(target.log_prob(q1) - 0.5 * np.dot(p1, p1))
        return joint1 - joint0

    direction = 1.0 if log_accept(eps) > np.log(0.5) else -1.0
    for _ in range(64):
        eps_next = eps * (2.0 ** direction)
        if direction * log_accept(eps_next) <= direction * np.log(0.5):
            break
        eps = eps_next
    return eps


@dataclass
class DualAveragingAdapter:
    """Step-size adaptation via dual averaging (extension, off by default).

    Call :meth:`update` with the realized acceptance statistic after each
    warmup trajectory; read :attr:`step_size` during warmup and
    :attr:`adapted_step_size` afterwards.
    """

    initial_step_size: float
    target_accept: float = 0.8
    gamma: float = 0.05
    t0: float = 10.0
    kappa: float = 0.75

    def __post_init__(self):
        self.mu = np.log(10.0 * self.initial_step_size)
        self.log_eps = np.log(self.initial_step_size)
        self.log_eps_bar = 0.0
        self.h_bar = 0.0
        self.t = 0

    @property
    def step_size(self) -> float:
        """The step size to use for the next warmup trajectory."""
        return float(np.exp(self.log_eps))

    @property
    def adapted_step_size(self) -> float:
        """The averaged step size to freeze after warmup."""
        return float(np.exp(self.log_eps_bar))

    def update(self, accept_prob: float) -> None:
        """Feed one trajectory's acceptance statistic to the adapter."""
        self.t += 1
        frac = 1.0 / (self.t + self.t0)
        self.h_bar = (1.0 - frac) * self.h_bar + frac * (
            self.target_accept - accept_prob
        )
        self.log_eps = self.mu - np.sqrt(self.t) / self.gamma * self.h_bar
        weight = self.t ** -self.kappa
        self.log_eps_bar = weight * self.log_eps + (1.0 - weight) * self.log_eps_bar
