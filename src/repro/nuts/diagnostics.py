"""MCMC convergence diagnostics: split R-hat and effective sample size.

The paper motivates batched NUTS with "more precise convergence diagnostics
and uncertainty estimates" from many parallel chains; these are the standard
diagnostics that consume such chains.  Conventions follow Gelman et al.,
*Bayesian Data Analysis* (3rd ed.) and Geyer's initial-positive-sequence
truncation for the ESS autocorrelation sum.

Chains are arrays of shape ``(n_samples, n_chains)`` for a scalar quantity
or ``(n_samples, n_chains, dim)`` for vector states (diagnosed per
coordinate).
"""

from __future__ import annotations

import numpy as np


def _check_chains(chains: np.ndarray) -> np.ndarray:
    chains = np.asarray(chains, dtype=np.float64)
    if chains.ndim == 2:
        chains = chains[:, :, None]
    if chains.ndim != 3:
        raise ValueError(
            f"chains must have shape (samples, chains[, dim]), got {chains.shape}"
        )
    if chains.shape[0] < 4:
        raise ValueError("need at least 4 samples per chain")
    return chains


def potential_scale_reduction(chains: np.ndarray) -> np.ndarray:
    """Split R-hat per coordinate; values near 1 indicate convergence.

    Each chain is split in half (doubling the chain count), then the classic
    between/within variance ratio is computed.
    """
    chains = _check_chains(chains)
    n, m, dim = chains.shape
    half = n // 2
    split = np.concatenate([chains[:half], chains[half : 2 * half]], axis=1)
    n, m = split.shape[0], split.shape[1]
    chain_means = split.mean(axis=0)                      # (m, dim)
    chain_vars = split.var(axis=0, ddof=1)                # (m, dim)
    within = chain_vars.mean(axis=0)
    between = n * chain_means.var(axis=0, ddof=1)
    var_hat = (n - 1) / n * within + between / n
    with np.errstate(divide="ignore", invalid="ignore"):
        rhat = np.sqrt(var_hat / within)
    return rhat


def effective_sample_size(chains: np.ndarray) -> np.ndarray:
    """ESS per coordinate via multi-chain autocorrelation.

    Uses the FFT autocovariance estimator with Geyer's initial positive
    sequence: lags are summed in (odd, even) pairs until a pair goes
    non-positive.
    """
    chains = _check_chains(chains)
    n, m, dim = chains.shape
    centered = chains - chains.mean(axis=0, keepdims=True)
    # FFT autocovariance per chain and coordinate.
    size = 2 * n
    f = np.fft.rfft(centered, n=size, axis=0)
    acov = np.fft.irfft(f * np.conj(f), n=size, axis=0)[:n].real / n  # (n, m, dim)
    within_acov = acov.mean(axis=1)                                   # (n, dim)
    chain_var = chains.var(axis=0, ddof=1).mean(axis=0)               # (dim,)
    mean_var = within_acov[0] * n / (n - 1.0)
    var_plus = mean_var * (n - 1.0) / n + chains.mean(axis=0).var(axis=0, ddof=1)

    ess = np.empty(dim)
    for k in range(dim):
        rho = 1.0 - (mean_var[k] - within_acov[:, k]) / var_plus[k]
        # Geyer pairs: Gamma_t = rho[2t] + rho[2t+1] must stay positive.
        tail = 0.0
        t = 1
        while t + 1 < n:
            pair = rho[t] + rho[t + 1]
            if pair <= 0.0:
                break
            tail += pair
            t += 2
        ess[k] = n * m / (1.0 + 2.0 * tail)
    return np.minimum(ess, n * m * 1.0)


def summarize(chains: np.ndarray) -> dict:
    """Mean, standard deviation, R-hat and ESS per coordinate."""
    chains = _check_chains(chains)
    flat = chains.reshape(-1, chains.shape[-1])
    return {
        "mean": flat.mean(axis=0),
        "std": flat.std(axis=0, ddof=1),
        "rhat": potential_scale_reduction(chains),
        "ess": effective_sample_size(chains),
    }
