"""Hand-derived iterative NUTS — the "considerable work to do by hand".

This is a single-chain, recursion-free No-U-Turn sampler in straight numpy,
playing two roles from the paper:

* the **Stan baseline** of Figure 5: a well-optimized single-chain CPU
  implementation with no batching machinery whatsoever (its throughput is
  flat in batch size — chains run serially); and
* the hand-rewritten non-recursive NUTS the paper cites (Phan & Pradhan
  2019; Lao & Dillon 2019) as the labor-intensive alternative to
  autobatching.

The recursion of ``build_tree`` is replaced by the classic checkpoint
trick: while adding the ``i``-th leaf of a ``2**j``-leaf subtree, the
sampler keeps one saved state per tree level.  Leaf ``i`` is the *first*
leaf of every subtree level ``L`` with ``2**L | i`` (checkpoint it), and the
*last* leaf of every level ``L <= trailing_ones(i)`` (run that level's
U-turn test against its checkpoint).  This visits exactly the internal
nodes the recursive version tests, in the same order.

Proposals use reservoir sampling over slice-accepted leaves, which is
distributionally identical to the recursive slice sampler's hierarchical
``n2/(n1+n2)`` coin flips (both make the proposal uniform over accepted
leaves).  The RNG layout differs from the autobatched programs, so chains
agree in distribution, not bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nuts.leapfrog import leapfrog
from repro.targets.base import Target

#: Slice divergence threshold, as in Hoffman & Gelman.
DELTA_MAX = 1000.0


def _trailing_ones(i: int) -> int:
    count = 0
    while i & 1:
        count += 1
        i >>= 1
    return count


@dataclass
class IterativeResult:
    """Outcome of one single-chain iterative run."""

    positions: np.ndarray     #: (n_trajectories, dim) post-trajectory states
    grad_evals: int           #: total gradient evaluations
    mean_tree_leaves: float   #: average leaves per trajectory (diagnostics)


class IterativeNuts:
    """Recursion-free single-chain NUTS over a :class:`Target`."""

    def __init__(
        self,
        target: Target,
        step_size: float,
        max_depth: int = 6,
        n_leapfrog: int = 4,
    ):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.target = target
        self.step_size = float(step_size)
        self.max_depth = int(max_depth)
        self.n_leapfrog = int(n_leapfrog)
        self.grad_evals = 0

    # -- internals -------------------------------------------------------------

    def _leaf(
        self, q: np.ndarray, p: np.ndarray, direction: float
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """One tree leaf: ``n_leapfrog`` steps; returns (q, p, joint)."""
        q, p = leapfrog(
            q, p, direction * self.step_size, self.target.grad_log_prob,
            n_steps=self.n_leapfrog,
        )
        self.grad_evals += self.n_leapfrog + 1
        joint = float(self.target.log_prob(q) - 0.5 * np.dot(p, p))
        # Acceptance statistic for dual-averaging adaptation (H&G §3.2):
        # mean over leaves of min(1, exp(joint - joint0)).
        self._alpha_sum += min(1.0, float(np.exp(min(joint - self._joint0, 0.0))))
        self._alpha_count += 1
        return q, p, joint

    @staticmethod
    def _uturn(q_minus, p_minus, q_plus, p_plus) -> bool:
        dq = q_plus - q_minus
        return bool(np.dot(dq, p_minus) < 0.0 or np.dot(dq, p_plus) < 0.0)

    def _build_subtree(
        self,
        q: np.ndarray,
        p: np.ndarray,
        log_u: float,
        direction: float,
        depth: int,
        rng: np.random.RandomState,
    ):
        """Iteratively add ``2**depth`` leaves extending from ``(q, p)``.

        Returns ``(q_end, p_end, proposal, n_accepted, still_going)`` where
        ``proposal`` is uniform over the slice-accepted leaves (or None).
        """
        n_leaves = 1 << depth
        ckpt_q = [None] * (depth + 1)
        ckpt_p = [None] * (depth + 1)
        n_accepted = 0
        proposal: Optional[np.ndarray] = None
        for i in range(n_leaves):
            q, p, joint = self._leaf(q, p, direction)
            if log_u <= joint:
                n_accepted += 1
                # Reservoir: keep this leaf with probability 1/n_accepted.
                if rng.uniform() * n_accepted < 1.0:
                    proposal = q
            if log_u >= joint + DELTA_MAX:
                return q, p, proposal, n_accepted, False
            # Checkpoint: leaf i starts every level-L subtree with 2^L | i.
            for level in range(depth + 1):
                if i % (1 << level) == 0:
                    ckpt_q[level] = q
                    ckpt_p[level] = p
                else:
                    break
            # U-turn tests: leaf i ends one subtree per trailing one-bit.
            for level in range(1, _trailing_ones(i) + 1):
                if self._uturn(ckpt_q[level], ckpt_p[level], q, p):
                    return q, p, proposal, n_accepted, False
        return q, p, proposal, n_accepted, True

    # -- public API --------------------------------------------------------------

    def trajectory(
        self, q: np.ndarray, rng: np.random.RandomState
    ) -> Tuple[np.ndarray, int]:
        """One NUTS transition from ``q``; returns (new_q, leaves_used)."""
        q = np.asarray(q, dtype=np.float64)
        p0 = rng.randn(self.target.dim)
        joint0 = float(self.target.log_prob(q) - 0.5 * np.dot(p0, p0))
        self._joint0 = joint0
        self._alpha_sum = 0.0
        self._alpha_count = 0
        log_u = joint0 + np.log(rng.uniform())
        q_minus, p_minus = q, p0
        q_plus, p_plus = q, p0
        q_cur = q
        n = 1
        leaves = 0
        for depth in range(self.max_depth):
            direction = -1.0 if rng.uniform() < 0.5 else 1.0
            if direction < 0:
                q_minus, p_minus, proposal, n_new, going = self._build_subtree(
                    q_minus, p_minus, log_u, direction, depth, rng
                )
            else:
                q_plus, p_plus, proposal, n_new, going = self._build_subtree(
                    q_plus, p_plus, log_u, direction, depth, rng
                )
            leaves += 1 << depth
            if going and proposal is not None:
                if rng.uniform() * n < n_new:
                    q_cur = proposal
            n += n_new
            if not going or self._uturn(q_minus, p_minus, q_plus, p_plus):
                break
        self.last_accept_stat = (
            self._alpha_sum / self._alpha_count if self._alpha_count else 0.0
        )
        return q_cur, leaves

    def warmup(
        self,
        q0: np.ndarray,
        n_warmup: int,
        seed: int = 0,
        target_accept: float = 0.8,
    ) -> Tuple[np.ndarray, float]:
        """Dual-averaging step-size adaptation (extension; H&G §3.2).

        Runs ``n_warmup`` trajectories, adapting ``step_size`` toward the
        ``target_accept`` acceptance statistic.  Returns the final state and
        the adapted step size; ``self.step_size`` is updated in place.
        """
        from repro.nuts.sampler import DualAveragingAdapter

        rng = np.random.RandomState(seed)
        adapter = DualAveragingAdapter(
            initial_step_size=self.step_size, target_accept=target_accept
        )
        q = np.asarray(q0, dtype=np.float64)
        for _ in range(n_warmup):
            self.step_size = adapter.step_size
            q, _ = self.trajectory(q, rng)
            adapter.update(self.last_accept_stat)
        self.step_size = adapter.adapted_step_size
        return q, self.step_size

    def sample(
        self, q0: np.ndarray, n_trajectories: int, seed: int = 0
    ) -> IterativeResult:
        """Run a single chain for ``n_trajectories`` transitions."""
        rng = np.random.RandomState(seed)
        self.grad_evals = 0
        q = np.asarray(q0, dtype=np.float64)
        if q.shape != (self.target.dim,):
            raise ValueError(
                f"q0 must have shape ({self.target.dim},), got {q.shape}"
            )
        positions = np.empty((n_trajectories, self.target.dim))
        total_leaves = 0
        for t in range(n_trajectories):
            q, leaves = self.trajectory(q, rng)
            positions[t] = q
            total_leaves += leaves
        return IterativeResult(
            positions=positions,
            grad_evals=self.grad_evals,
            mean_tree_leaves=total_leaves / max(n_trajectories, 1),
        )

    def sample_batch(
        self, q0: np.ndarray, n_trajectories: int, seed: int = 0
    ) -> Tuple[np.ndarray, int]:
        """Run independent chains *serially*, one per row of ``q0``.

        This is how a single-chain system covers a batch workload; its
        throughput is flat in batch size (the Stan line of Figure 5).
        Returns (final positions (Z, dim), total gradient evaluations).
        """
        q0 = np.atleast_2d(np.asarray(q0, dtype=np.float64))
        finals = np.empty_like(q0)
        total_grads = 0
        for b in range(q0.shape[0]):
            result = self.sample(q0[b], n_trajectories, seed=seed + b)
            finals[b] = result.positions[-1]
            total_grads += result.grad_evals
        return finals, total_grads
