"""The No U-Turn Sampler — the paper's evaluation workload (Section 4).

Two implementations live here:

* :mod:`repro.nuts.tree` builds the **recursive, single-example** NUTS of
  Hoffman & Gelman (Algorithm 3), written in the autobatchable Python
  subset, from a :class:`~repro.targets.base.Target`.  This is "the complex
  recursive function, prohibitively difficult to batch by hand" that both
  autobatching transformations are evaluated on.  Per Section 4.1 each tree
  leaf takes a configurable number of leapfrog steps (the paper uses 4).
* :mod:`repro.nuts.iterative` is the **hand-derived iterative** single-chain
  NUTS (explicit checkpoint stack, no recursion, no autobatching) playing
  the role of the paper's Stan baseline and of the hand-rewrites it cites
  (Phan & Pradhan 2019; Lao & Dillon 2019).

:mod:`repro.nuts.sampler` drives either implementation under every execution
strategy of Figure 5; :mod:`repro.nuts.diagnostics` provides R-hat / ESS.
"""

from repro.nuts.leapfrog import leapfrog
from repro.nuts.tree import NutsFunctions, make_nuts_functions
from repro.nuts.kernel import NutsKernel, NutsResult
from repro.nuts.iterative import IterativeNuts
from repro.nuts.sampler import STRATEGIES, run_nuts
from repro.nuts.diagnostics import effective_sample_size, potential_scale_reduction

__all__ = [
    "leapfrog",
    "NutsFunctions",
    "make_nuts_functions",
    "NutsKernel",
    "NutsResult",
    "IterativeNuts",
    "STRATEGIES",
    "run_nuts",
    "effective_sample_size",
    "potential_scale_reduction",
]
