"""Batched leapfrog integration in plain numpy.

This module is the *unbatched-machinery* reference: the iterative baseline
and the physics tests use it directly.  The autobatched NUTS programs carry
their own leapfrog written in the autobatch subset (see
:mod:`repro.nuts.tree`) so that its gradient calls go through the primitive
registry and are visible to instrumentation.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

GradFn = Callable[[np.ndarray], np.ndarray]


def leapfrog(
    q: np.ndarray,
    p: np.ndarray,
    step: np.ndarray,
    grad_log_prob: GradFn,
    n_steps: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Integrate Hamilton's equations for ``n_steps`` of size ``step``.

    ``q`` and ``p`` may be single states ``(d,)`` or batches ``(Z, d)``;
    ``step`` may be scalar or per-member ``(Z,)`` (signed: negative steps
    integrate backward in time).  Returns the new ``(q, p)``.

    The kick-drift-kick form costs ``n_steps + 1`` gradient evaluations.
    """
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    q = np.asarray(q, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    step = np.asarray(step, dtype=np.float64)
    if step.ndim == q.ndim - 1:
        step = step[..., None]
    p = p + 0.5 * step * grad_log_prob(q)
    q = q + step * p
    for _ in range(n_steps - 1):
        p = p + step * grad_log_prob(q)
        q = q + step * p
    p = p + 0.5 * step * grad_log_prob(q)
    return q, p


def kinetic_energy(p: np.ndarray) -> np.ndarray:
    """Standard-normal momentum kinetic energy, batched over leading axes."""
    p = np.asarray(p, dtype=np.float64)
    return 0.5 * np.sum(p * p, axis=-1)


def hamiltonian(
    q: np.ndarray, p: np.ndarray, log_prob: Callable[[np.ndarray], np.ndarray]
) -> np.ndarray:
    """The joint log-density ``log p(q) - K(p)`` (negative energy)."""
    return log_prob(q) - kinetic_energy(p)
