"""Recursive NUTS written in the autobatchable Python subset.

:func:`make_nuts_functions` takes a :class:`~repro.targets.base.Target` and
manufactures the full family of single-example programs:

* ``leapfrog_leaf`` — ``n_leapfrog`` integrator steps (the paper takes 4
  steps per tree leaf, Section 4.1);
* ``build_tree`` — the recursive doubling of Hoffman & Gelman's Algorithm 3
  (slice-sampler variant), the function whose recursion both autobatching
  machines must handle;
* ``nuts_step`` — one full NUTS trajectory (momentum refresh, slice draw,
  outer doubling loop, trajectory-level u-turn test);
* ``nuts_chain`` — a Markov chain of consecutive trajectories.  Running
  *this* under program-counter autobatching is what lets gradients batch
  across trajectory boundaries (Figure 6); local static autobatching can
  only synchronize within the recursion pattern mirrored on the Python
  stack.

Every numeric parameter (step size, maximum depth, leapfrog steps per leaf,
trajectory count) is a runtime argument, because the autobatch frontend
treats free Python names as IR variables, not compile-time constants.  Each
function additionally threads two pieces of per-member state:

* ``ctr`` — a counter-based RNG state, so every batch member owns an
  independent, schedule-invariant random stream (all execution strategies
  produce bit-identical chains);
* ``ng`` — a gradient-evaluation counter (``n_leapfrog + 1`` per leaf),
  the quantity Figure 5 reports per second and Figure 6's notion of
  "useful work".

The slice condition uses ``Delta_max = 1000`` as in Hoffman & Gelman.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import ops
from repro.frontend.api import AutobatchFunction, autobatch
from repro.frontend.registry import PrimitiveRegistry
from repro.targets.base import Target


@dataclass(frozen=True)
class NutsFunctions:
    """The autobatched NUTS program family for one target."""

    target: Target
    leapfrog_leaf: AutobatchFunction
    build_tree: AutobatchFunction
    nuts_step: AutobatchFunction
    nuts_chain: AutobatchFunction


def make_nuts_functions(
    target: Target, registry: Optional[PrimitiveRegistry] = None
) -> NutsFunctions:
    """Build the recursive NUTS program family for ``target``.

    The target's log-density and gradient become registered primitives
    (the gradient tagged ``"gradient"`` for utilization instrumentation);
    everything else is ordinary autobatchable Python below.
    """
    prims = target.primitives(registry)
    logp = prims.log_prob
    gradlogp = prims.grad_log_prob

    @autobatch
    def leapfrog_leaf(q, p, de, nsteps, ng):
        """One tree leaf: nsteps leapfrog steps of signed size de."""
        # Kick-drift-...-kick with signed step de; nsteps + 1 gradient evals.
        g = gradlogp(q)
        p = p + 0.5 * de * g
        q = q + de * p
        i = 1.0
        while i < nsteps:
            g = gradlogp(q)
            p = p + de * g
            q = q + de * p
            i = i + 1.0
        g = gradlogp(q)
        p = p + 0.5 * de * g
        ng = ng + nsteps + 1.0
        return q, p, ng

    @autobatch
    def build_tree(q, p, logu, v, j, eps, nsteps, ng, ctr):
        """Hoffman & Gelman's recursive doubling (Algorithm 3, slice form)."""
        if j < 0.5:
            # Base case: one leaf = nsteps leapfrog steps in direction v.
            q1, p1, ng = leapfrog_leaf(q, p, v * eps, nsteps, ng)
            joint = logp(q1) - 0.5 * ops.dot(p1, p1)
            n1 = float(logu <= joint)
            s1 = float(logu < joint + 1000.0)
            return q1, p1, q1, p1, q1, n1, s1, ng, ctr
        # Recursion: build the left half, then (if still going) the right.
        qm, pm, qp, pp, qprop, n1, s1, ng, ctr = build_tree(
            q, p, logu, v, j - 1.0, eps, nsteps, ng, ctr
        )
        if s1 > 0.5:
            if v < 0.0:
                qm, pm, w1, w2, qprop2, n2, s2, ng, ctr = build_tree(
                    qm, pm, logu, v, j - 1.0, eps, nsteps, ng, ctr
                )
            else:
                w3, w4, qp, pp, qprop2, n2, s2, ng, ctr = build_tree(
                    qp, pp, logu, v, j - 1.0, eps, nsteps, ng, ctr
                )
            # Keep the new proposal with probability n2 / (n1 + n2);
            # multiplying through avoids 0/0 when both counts are zero.
            u = ops.runif(ctr)
            ctr = ops.rng_next(ctr)
            if u * (n1 + n2) < n2:
                qprop = qprop2
            dq = qp - qm
            okm = float(ops.dot(dq, pm) >= 0.0)
            okp = float(ops.dot(dq, pp) >= 0.0)
            s1 = s2 * okm * okp
            n1 = n1 + n2
        return qm, pm, qp, pp, qprop, n1, s1, ng, ctr

    @autobatch
    def nuts_step(q, eps, max_depth, nsteps, ng, ctr):
        """One NUTS trajectory: refresh momentum, double until the u-turn."""
        # Momentum refresh and slice variable.
        p0 = ops.rnorm_like(ctr, q)
        ctr = ops.rng_next(ctr)
        joint0 = logp(q) - 0.5 * ops.dot(p0, p0)
        u0 = ops.runif(ctr)
        ctr = ops.rng_next(ctr)
        logu = joint0 + ops.log(u0)
        qminus = q
        qplus = q
        pminus = p0
        pplus = p0
        qcur = q
        j = 0.0
        n = 1.0
        s = 1.0
        while (s > 0.5) and (j < max_depth):
            # Uniformly choose a direction to double in.
            uv = ops.runif(ctr)
            ctr = ops.rng_next(ctr)
            v = ops.sign(uv - 0.5)
            if v < 0.0:
                qminus, pminus, w1, w2, qprop, n1, s1, ng, ctr = build_tree(
                    qminus, pminus, logu, v, j, eps, nsteps, ng, ctr
                )
            else:
                w3, w4, qplus, pplus, qprop, n1, s1, ng, ctr = build_tree(
                    qplus, pplus, logu, v, j, eps, nsteps, ng, ctr
                )
            if s1 > 0.5:
                # Accept the subtree's proposal with probability min(1, n1/n).
                ua = ops.runif(ctr)
                ctr = ops.rng_next(ctr)
                if ua * n < n1:
                    qcur = qprop
            n = n + n1
            dq = qplus - qminus
            okm = float(ops.dot(dq, pminus) >= 0.0)
            okp = float(ops.dot(dq, pplus) >= 0.0)
            s = s1 * okm * okp
            j = j + 1.0
        return qcur, ng, ctr

    @autobatch
    def nuts_chain(q, eps, max_depth, nsteps, n_traj, ng, ctr):
        """A Markov chain of n_traj consecutive NUTS trajectories."""
        t = 0.0
        while t < n_traj:
            q, ng, ctr = nuts_step(q, eps, max_depth, nsteps, ng, ctr)
            t = t + 1.0
        return q, ng, ctr

    return NutsFunctions(
        target=target,
        leapfrog_leaf=leapfrog_leaf,
        build_tree=build_tree,
        nuts_step=nuts_step,
        nuts_chain=nuts_chain,
    )
