"""Variable storage for the batched machines.

Three storage classes mirror the :class:`~repro.ir.instructions.VarKind`
analysis: temporaries live in a per-block-execution dict managed by the VM;
registers are flat ``(Z, *event)`` arrays with masked updates; stacked
variables own a :class:`~repro.vm.stack.BatchedStack`.

Storage is allocated lazily on first write, inferring dtype and event shape
from the written value (the runtime analog of XLA's static shape inference:
once allocated, the event shape is fixed and mismatches are errors; dtypes
may only widen).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.vm.stack import BatchedStack, UncachedBatchedStack


class UninitializedRead(RuntimeError):
    """A variable was read before any batch member wrote it."""


def _event_shape_of(value: np.ndarray) -> Tuple[int, ...]:
    return np.asarray(value).shape[1:]


def _broadcast_mask(mask: np.ndarray, ndim: int) -> np.ndarray:
    return mask.reshape(mask.shape + (1,) * (ndim - 1))


class RegisterStorage:
    """A flat batched array with masked (or scattered) updates, no stack."""

    def __init__(self, name: str, batch_size: int):
        self.name = name
        self.batch_size = batch_size
        self.array: Optional[np.ndarray] = None

    def _ensure(self, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value)
        if self.array is None:
            self.array = np.zeros(
                (self.batch_size,) + value.shape[1:], dtype=value.dtype
            )
        elif self.array.shape[1:] != value.shape[1:]:
            raise ValueError(
                f"variable {self.name!r}: event shape changed from "
                f"{self.array.shape[1:]} to {value.shape[1:]}"
            )
        elif not np.can_cast(value.dtype, self.array.dtype, casting="same_kind"):
            self.array = self.array.astype(
                np.promote_types(self.array.dtype, value.dtype)
            )
        return self.array

    def read(self) -> np.ndarray:
        if self.array is None:
            raise UninitializedRead(f"variable {self.name!r} read before assignment")
        return self.array

    def read_at(self, idx: np.ndarray) -> np.ndarray:
        return self.read()[idx]

    def write(self, mask: np.ndarray, value: np.ndarray) -> None:
        arr = self._ensure(value)
        np.copyto(
            arr,
            np.asarray(value, dtype=arr.dtype),
            where=_broadcast_mask(mask, arr.ndim),
        )

    def write_at(self, idx: np.ndarray, value_gathered: np.ndarray) -> None:
        # Shape bookkeeping needs a batch-shaped prototype; fabricate one.
        proto_shape = (self.batch_size,) + np.asarray(value_gathered).shape[1:]
        arr = self._ensure(np.empty(proto_shape, dtype=np.asarray(value_gathered).dtype))
        arr[idx] = value_gathered

    def reset_lanes(self, idx: np.ndarray) -> None:
        """Zero the lanes in ``idx``, as if they were freshly allocated."""
        if self.array is not None and idx.size:
            self.array[idx] = 0

    # -- lane checkpoint/resume (serving-engine preemption) ------------------

    def capture_lane(self, lane: int) -> Optional[np.ndarray]:
        """One lane's value, or None while the storage is unallocated."""
        if self.array is None:
            return None
        return self.array[lane].copy()

    def restore_lane(self, lane: int, value: Optional[np.ndarray]) -> None:
        """Reinstall a captured lane value, allocating storage if needed."""
        if value is None:
            if self.array is not None:
                self.array[lane] = 0
            return
        value = np.asarray(value)
        arr = self._ensure(value[None])
        arr[lane] = value


class StackedStorage:
    """Storage backed by a batched stack; allocation deferred to first write."""

    def __init__(
        self,
        name: str,
        batch_size: int,
        depth: int,
        top_cache: bool = True,
    ):
        self.name = name
        self.batch_size = batch_size
        self.depth = depth
        self.top_cache = top_cache
        self.stack: Optional[BatchedStack] = None
        # Pre-write pushes must be replayed once shape/dtype are known: a
        # push of value v onto a virgin stack is just "depth += 1; top = v",
        # which allocation-on-first-write handles naturally because pushes
        # always carry the value.

    def _ensure(self, value: np.ndarray):
        value = np.asarray(value)
        if self.stack is None:
            cls = BatchedStack if self.top_cache else UncachedBatchedStack
            self.stack = cls(
                batch_size=self.batch_size,
                depth=self.depth,
                event_shape=value.shape[1:],
                dtype=value.dtype,
            )
        else:
            if self.stack.event_shape != value.shape[1:]:
                raise ValueError(
                    f"variable {self.name!r}: event shape changed from "
                    f"{self.stack.event_shape} to {value.shape[1:]}"
                )
            if not np.can_cast(value.dtype, self.stack.dtype, casting="same_kind"):
                promoted = np.promote_types(self.stack.dtype, value.dtype)
                self.stack.data = self.stack.data.astype(promoted)
                if hasattr(self.stack, "cache"):
                    self.stack.cache = self.stack.cache.astype(promoted)
                self.stack.dtype = promoted
        return self.stack

    def read(self) -> np.ndarray:
        if self.stack is None:
            raise UninitializedRead(f"variable {self.name!r} read before assignment")
        return self.stack.read()

    def read_at(self, idx: np.ndarray) -> np.ndarray:
        if self.stack is None:
            raise UninitializedRead(f"variable {self.name!r} read before assignment")
        return self.stack.read_at(idx)

    def write(self, mask: np.ndarray, value: np.ndarray) -> None:
        self._ensure(value).update(mask, np.asarray(value))

    def write_at(self, idx: np.ndarray, value_gathered: np.ndarray) -> None:
        value_gathered = np.asarray(value_gathered)
        proto = np.empty(
            (self.batch_size,) + value_gathered.shape[1:], dtype=value_gathered.dtype
        )
        self._ensure(proto).update_at(idx, value_gathered)

    def push(self, mask: np.ndarray, value: np.ndarray) -> None:
        self._ensure(value).push(mask, np.asarray(value))

    def push_at(self, idx: np.ndarray, value_gathered: np.ndarray) -> None:
        value_gathered = np.asarray(value_gathered)
        proto = np.empty(
            (self.batch_size,) + value_gathered.shape[1:], dtype=value_gathered.dtype
        )
        self._ensure(proto).push_at(idx, value_gathered)

    def pop(self, mask: np.ndarray) -> None:
        if self.stack is None:
            raise UninitializedRead(f"variable {self.name!r} popped before assignment")
        self.stack.pop(mask)

    def pop_at(self, idx: np.ndarray) -> None:
        if self.stack is None:
            raise UninitializedRead(f"variable {self.name!r} popped before assignment")
        self.stack.pop_at(idx)

    def reset_lanes(self, idx: np.ndarray) -> None:
        """Drop the lanes in ``idx`` back to an empty, zeroed stack."""
        if self.stack is not None and idx.size:
            self.stack.reset_lanes(idx)

    # -- lane checkpoint/resume (serving-engine preemption) ------------------

    def capture_lane(self, lane: int) -> Optional[np.ndarray]:
        """One lane's logical stack frames (bottom to top), or None.

        The frame representation is stack-layout independent (see
        :meth:`~repro.vm.stack.BatchedStack.restore_lane`), so a snapshot
        restores across machines regardless of the top-cache setting.
        """
        if self.stack is None:
            return None
        return np.array(self.stack.frames(lane), copy=True)

    def restore_lane(self, lane: int, frames: Optional[np.ndarray]) -> None:
        """Reinstall captured lane frames, allocating the stack if needed."""
        if frames is None:
            if self.stack is not None:
                self.stack.reset_lanes(np.asarray([lane], dtype=np.int64))
            return
        frames = np.asarray(frames)
        proto = np.empty(
            (self.batch_size,) + frames.shape[1:], dtype=frames.dtype
        )
        self._ensure(proto).restore_lane(lane, frames)
