"""Block-selection heuristics (the paper's "second significant free choice").

As long as no block starves, any selection criterion is correct; the paper's
Algorithms 1 and 2 encode "always run the earliest available block in program
order", which is "(relatively) predictable by the user".  We additionally
implement two refinements the paper alludes to, for the scheduler ablation:
pick the block with the most waiting members (greedy utilization), or
round-robin through blocks (bounded starvation by construction).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class EarliestBlockScheduler:
    """Always run the earliest (lowest-index) block with any waiting member."""

    name = "earliest"

    def select(self, pcs: np.ndarray, exit_index: int) -> Optional[int]:
        lowest = int(pcs.min())
        return None if lowest >= exit_index else lowest

    def reset(self) -> None:
        pass


class MostActiveScheduler:
    """Run the block with the most waiting members (ties -> earliest)."""

    name = "most_active"

    def select(self, pcs: np.ndarray, exit_index: int) -> Optional[int]:
        live = pcs[pcs < exit_index]
        if live.size == 0:
            return None
        counts = np.bincount(live)
        return int(np.argmax(counts))

    def reset(self) -> None:
        pass


class RoundRobinScheduler:
    """Cycle through block indices, running each that has waiting members."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, pcs: np.ndarray, exit_index: int) -> Optional[int]:
        live = np.unique(pcs[pcs < exit_index])
        if live.size == 0:
            return None
        later = live[live >= self._cursor]
        choice = int(later[0]) if later.size else int(live[0])
        self._cursor = choice + 1
        return choice

    def reset(self) -> None:
        self._cursor = 0


class RegionScheduler:
    """Prefer entry blocks whose superblock run covers the most waiting lanes.

    Built for the superblock executor (``executor="superblock"``): the
    machine hands this scheduler the executor's
    :class:`~repro.backend.regions.RegionTable` via :meth:`set_regions`,
    and each select scores every waiting block by ``waiting_lanes *
    run_length`` — the lane-steps one dispatch through that block's run
    could retire — with ties going to the earliest block.  Without a
    region table (any other executor) the scoring degrades to
    most-active-with-earliest-ties.

    Starvation guard: a block that has been passed over ``max_defer``
    consecutive selects is chosen unconditionally (earliest first among
    the overdue), so side-exit blocks — which rarely front a long run —
    still make progress no matter how hot the region entries stay.  That
    keeps the correctness property the paper requires of any selection
    criterion: no waiting block is deferred forever.
    """

    name = "region"

    def __init__(self, max_defer: int = 8):
        if max_defer < 1:
            raise ValueError(f"max_defer must be >= 1, got {max_defer}")
        self.max_defer = int(max_defer)
        self._lengths: dict = {}
        self._age: dict = {}

    def set_regions(self, table) -> None:
        """Install the executor's region table (None clears it)."""
        if table is None:
            self._lengths = {}
        else:
            self._lengths = {
                i: len(chain) for i, chain in enumerate(table.chains)
            }

    def select(self, pcs: np.ndarray, exit_index: int) -> Optional[int]:
        live = pcs[pcs < exit_index]
        if live.size == 0:
            return None
        blocks, counts = np.unique(live, return_counts=True)
        overdue = [
            int(b) for b in blocks if self._age.get(int(b), 0) >= self.max_defer
        ]
        if overdue:
            choice = min(overdue)
        else:
            lengths = self._lengths
            choice = None
            best = None
            for b, c in zip(blocks, counts):
                b = int(b)
                key = (-int(c) * lengths.get(b, 1), b)
                if best is None or key < best:
                    best = key
                    choice = b
        age = self._age
        for b in blocks:
            b = int(b)
            age[b] = 0 if b == choice else age.get(b, 0) + 1
        return choice

    def reset(self) -> None:
        self._age = {}


_SCHEDULERS = {
    "earliest": EarliestBlockScheduler,
    "most_active": MostActiveScheduler,
    "round_robin": RoundRobinScheduler,
    "region": RegionScheduler,
}


def make_scheduler(spec) -> object:
    """Accepts a scheduler name, class, or instance."""
    if isinstance(spec, str):
        try:
            return _SCHEDULERS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {spec!r}; options: {sorted(_SCHEDULERS)}"
            )
    if isinstance(spec, type):
        return spec()
    return spec
