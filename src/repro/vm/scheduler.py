"""Block-selection heuristics (the paper's "second significant free choice").

As long as no block starves, any selection criterion is correct; the paper's
Algorithms 1 and 2 encode "always run the earliest available block in program
order", which is "(relatively) predictable by the user".  We additionally
implement two refinements the paper alludes to, for the scheduler ablation:
pick the block with the most waiting members (greedy utilization), or
round-robin through blocks (bounded starvation by construction).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class EarliestBlockScheduler:
    """Always run the earliest (lowest-index) block with any waiting member."""

    name = "earliest"

    def select(self, pcs: np.ndarray, exit_index: int) -> Optional[int]:
        lowest = int(pcs.min())
        return None if lowest >= exit_index else lowest

    def reset(self) -> None:
        pass


class MostActiveScheduler:
    """Run the block with the most waiting members (ties -> earliest)."""

    name = "most_active"

    def select(self, pcs: np.ndarray, exit_index: int) -> Optional[int]:
        live = pcs[pcs < exit_index]
        if live.size == 0:
            return None
        counts = np.bincount(live)
        return int(np.argmax(counts))

    def reset(self) -> None:
        pass


class RoundRobinScheduler:
    """Cycle through block indices, running each that has waiting members."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, pcs: np.ndarray, exit_index: int) -> Optional[int]:
        live = np.unique(pcs[pcs < exit_index])
        if live.size == 0:
            return None
        later = live[live >= self._cursor]
        choice = int(later[0]) if later.size else int(live[0])
        self._cursor = choice + 1
        return choice

    def reset(self) -> None:
        self._cursor = 0


_SCHEDULERS = {
    "earliest": EarliestBlockScheduler,
    "most_active": MostActiveScheduler,
    "round_robin": RoundRobinScheduler,
}


def make_scheduler(spec) -> object:
    """Accepts a scheduler name, class, or instance."""
    if isinstance(spec, str):
        try:
            return _SCHEDULERS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {spec!r}; options: {sorted(_SCHEDULERS)}"
            )
    if isinstance(spec, type):
        return spec()
    return spec
