"""Program-counter autobatching — the paper's Algorithm 2.

A flat, non-recursive batched machine over the stack dialect.  All state —
variable values, per-variable stacks, stack pointers, and the program
counter with its own return-address stack — is arrays, so the whole runtime
is a single loop of batched array operations: exactly the property that lets
the original system stage into graph-mode TensorFlow/XLA, and that lets this
reproduction compile basic blocks into fused closures (see
:mod:`repro.backend.fusion`).

Because recursive state is explicit, the machine batches logical threads at
*different stack depths* whenever they wait at the same block — the paper's
headline capability (e.g. the 5th gradient of one chain's 3rd NUTS
trajectory in tandem with the 8th gradient of another's 2nd).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.frontend.registry import PrimitiveRegistry, default_registry
from repro.ir.instructions import StackProgram, VarKind
from repro.vm.executors import ExecutionPlan, resolve_executor
from repro.vm.instrumentation import Instrumentation
from repro.vm.local_static import ExecutionLimitExceeded
from repro.vm.scheduler import make_scheduler
from repro.vm.stack import BatchedStack, StackOverflowError
from repro.vm.state import RegisterStorage, StackedStorage

#: Stack depth used when nothing better is known: no explicit
#: ``max_stack_depth`` was given and the plan carries no verified bound
#: (unverified plan, or a recursive program whose depth is input-dependent).
DEFAULT_MAX_STACK_DEPTH = 32


class SnapshotIncompatibleError(StackOverflowError):
    """A :class:`LaneSnapshot` statically cannot restore into this machine.

    Raised by :meth:`ProgramCounterVM.restore_lane` *before* any machine
    state is touched, naming the required vs available depth — replacing
    the old mid-restore overflow that surfaced from inside a stack after
    the lane had already been reset.  Subclasses
    :class:`~repro.vm.stack.StackOverflowError`, so the serving engine's
    fail-only-this-handle handling is unchanged.
    """


@dataclass
class LaneSnapshot:
    """One lane's complete machine state, detached from any machine.

    Because the program-counter machine keeps *all* recursive state explicit
    — the pc, the return-address stack, and per-variable value stacks are
    arrays with a lane dimension — a mid-flight lane is checkpointable: its
    column slices are the whole logical thread.  A snapshot captures those
    slices as plain arrays, so it can be reinstalled into any vacant lane of
    any machine running the same program (any width, any executor, either
    stack layout) and the thread resumes bit-identically from where it was.
    This is what lets the serving engine *preempt* a lane (evict, requeue
    with the snapshot, resume later) and lets the cluster migrate a
    preempted lane to another shard.

    ``storages`` maps variable name to the payload its storage class
    captured: a value copy for registers, the logical frames for stacked
    variables, or None while that storage was still unallocated.  Executors
    with per-lane device state may stash extras in ``executor_state`` via
    the :meth:`~repro.vm.executors.BlockExecutor.on_snapshot_lane` hook;
    ``executor`` records which executor captured the lane so transport
    errors can name it (restore does not require a matching executor —
    snapshots move freely between eager, fused, and superblock machines).

    :meth:`to_bytes`/:meth:`from_bytes` round-trip the snapshot through a
    versioned, integrity-checked wire format
    (:mod:`repro.vm.snapshot_codec`) — the basis for snapshot spilling,
    journal checkpoints, and cross-process migration.
    """

    program: StackProgram
    pc: int
    addr_frames: np.ndarray
    storages: Dict[str, Optional[np.ndarray]]
    executor_state: Dict[str, Any] = field(default_factory=dict)
    executor: str = ""

    def required_depth(self) -> int:
        """Smallest machine ``max_stack_depth`` that can hold these frames.

        The deepest saved-frame count across the return-address stack and
        every captured variable stack (the live top is the implicit base
        frame and needs no saved slot).
        """
        required = int(self.addr_frames.shape[0]) - 1
        for name, payload in self.storages.items():
            if payload is None:
                continue
            if self.program.kind(name) is VarKind.STACKED:
                required = max(required, int(np.asarray(payload).shape[0]) - 1)
        return required

    def to_bytes(self) -> bytes:
        """Serialize to the versioned wire format.

        Deterministic: identical snapshots encode to identical bytes.
        Raises :class:`~repro.vm.snapshot_codec.ExecutorStateError` (a
        ``TypeError``) if an ``executor_state`` extra cannot round-trip —
        state stashed by an ``on_snapshot_lane`` hook is never dropped
        silently.
        """
        from repro.vm.snapshot_codec import encode_snapshot

        return encode_snapshot(self)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        program: StackProgram,
        *,
        facts: Any = None,
        max_stack_depth: Optional[int] = None,
    ) -> "LaneSnapshot":
        """Decode serialized snapshot bytes against ``program``.

        The bytes are admission-checked *before* any lane state is
        materialized: integrity (CRC), program fingerprint, pc range, and
        — when ``facts``/``max_stack_depth`` are given — the same static
        depth checks :meth:`ProgramCounterVM.restore_lane` performs.  See
        :func:`repro.vm.snapshot_codec.decode_snapshot` for the typed
        error taxonomy.
        """
        from repro.vm.snapshot_codec import decode_snapshot

        return decode_snapshot(
            data, program, facts=facts, max_stack_depth=max_stack_depth
        )

    def __repr__(self) -> str:
        return (
            f"LaneSnapshot(pc={self.pc}, "
            f"addr_depth={self.addr_frames.shape[0]}, "
            f"storages={sorted(self.storages)})"
        )


class ProgramCounterVM:
    """Algorithm 2 with pluggable execution mode, scheduler, and block executors."""

    def __init__(
        self,
        program: Union[StackProgram, ExecutionPlan],
        batch_size: int,
        registry: Optional[PrimitiveRegistry] = None,
        mode: str = "mask",
        scheduler: Any = "earliest",
        max_stack_depth: Optional[int] = None,
        top_cache: bool = True,
        instrumentation: Optional[Instrumentation] = None,
        max_steps: int = 10 ** 9,
        block_executors: Optional[Sequence[Optional[Callable]]] = None,
        executor: Any = None,
    ):
        if mode not in ("mask", "gather"):
            raise ValueError(f"mode must be 'mask' or 'gather', got {mode!r}")
        if isinstance(program, ExecutionPlan):
            plan = program
            program = plan.program
            if executor is not None:
                raise ValueError("pass either an ExecutionPlan or executor=, not both")
        else:
            plan = ExecutionPlan(program=program, executor=resolve_executor(executor))
        if max_stack_depth is None:
            # Pre-size from the verifier's proven bound when the plan has
            # one; recursive (depth-unbounded) or unverified programs fall
            # back to the legacy default.  An explicit argument always wins.
            facts = getattr(plan, "facts", None)
            proven = None if facts is None else facts.required_stack_depth
            max_stack_depth = (
                DEFAULT_MAX_STACK_DEPTH if proven is None else proven
            )
        self.program = program
        self.batch_size = int(batch_size)
        self.registry = registry or default_registry
        self.mode = mode
        self.scheduler = make_scheduler(scheduler)
        self.max_stack_depth = int(max_stack_depth)
        self.top_cache = bool(top_cache)
        self.instr = instrumentation or Instrumentation()
        self.instr.batch_size = self.batch_size
        self.max_steps = max_steps
        self.exit_index = program.exit_index
        # Optional per-block executor overrides (legacy API); entries may be
        # None to fall back to the plan's executor for that block.
        self.block_executors = list(block_executors) if block_executors else None
        # Lane-occupancy accounting costs an O(Z) scan per step; only the
        # serving engine consumes it, so it opts in.
        self.track_occupancy = False

        self.storages: Dict[str, Any] = {}
        self._temps: Dict[str, np.ndarray] = {}
        self.pcreg = np.zeros(self.batch_size, dtype=np.int64)
        self.addr_stack = BatchedStack(
            batch_size=self.batch_size,
            depth=self.max_stack_depth,
            event_shape=(),
            dtype="int64",
        )
        # The bottom of every member's pc stack is the exit index, so the
        # main function's Return halts that member (Algorithm 2's pc init).
        self.addr_stack.update(
            np.ones(self.batch_size, dtype=bool),
            np.full(self.batch_size, self.exit_index, dtype=np.int64),
        )
        # Compile/attach the plan's per-block callables; the step loop only
        # ever dispatches through these.
        self.plan = plan
        self._bound = plan.bind(self)
        self._block_fns = self._bound.blocks
        self._steps = 0
        # A multi-block executor (superblock fusion) sets this to the union
        # of lanes that were active across every member block it ran, so
        # step_lanes can report the full set to per-request step budgets.
        self._stepped_override: Optional[np.ndarray] = None
        # Region-aware schedulers get the executor's superblock table so
        # they can prefer entry blocks whose chains cover the most lanes.
        if hasattr(self.scheduler, "set_regions"):
            regions_for = getattr(plan.executor, "regions_for", None)
            self.scheduler.set_regions(
                None if regions_for is None else regions_for(self.program)
            )

    # -- storage ----------------------------------------------------------------

    def storage(self, name: str):
        """The (lazily allocated) storage object backing variable ``name``."""
        st = self.storages.get(name)
        if st is None:
            kind = self.program.kind(name)
            if kind is VarKind.STACKED:
                st = StackedStorage(
                    name,
                    self.batch_size,
                    depth=self.max_stack_depth,
                    top_cache=self.top_cache,
                )
            else:
                st = RegisterStorage(name, self.batch_size)
            self.storages[name] = st
        return st

    def _read(self, name: str, idx: Optional[np.ndarray]) -> np.ndarray:
        if name in self._temps:
            return self._temps[name]
        self.instr.record_storage(self.program.kind(name), is_write=False)
        if idx is None:
            return self.storage(name).read()
        return self.storage(name).read_at(idx)

    def _write(self, name: str, value: np.ndarray, mask: np.ndarray, idx: np.ndarray) -> None:
        kind = self.program.kind(name)
        if kind is VarKind.TEMP:
            self._temps[name] = np.asarray(value)
            return
        self.instr.record_storage(kind, is_write=True)
        if self.mode == "mask":
            self.storage(name).write(mask, np.asarray(value))
        else:
            self.storage(name).write_at(idx, np.asarray(value))

    # -- execution ------------------------------------------------------------------

    def _validated_inputs(self, inputs: Sequence[np.ndarray], width: int, what: str):
        """Yield ``(name, array)`` pairs after arity and leading-dim checks."""
        if len(inputs) != len(self.program.inputs):
            raise ValueError(
                f"program takes {len(self.program.inputs)} inputs, got {len(inputs)}"
            )
        for name, value in zip(self.program.inputs, inputs):
            value = np.asarray(value)
            if value.shape[0] != width:
                raise ValueError(
                    f"input {name!r} has leading dimension {value.shape[0]}, "
                    f"expected {what} {width}"
                )
            yield name, value

    def bind_inputs(self, inputs: Sequence[np.ndarray]) -> None:
        """Write the batch inputs into the machine's input variables."""
        everyone = np.ones(self.batch_size, dtype=bool)
        for name, value in self._validated_inputs(
            inputs, self.batch_size, "batch size"
        ):
            self.storage(name).write(everyone, value)

    def outputs(self) -> List[np.ndarray]:
        """Current values of the program's output variables."""
        return [self.storage(name).read() for name in self.program.outputs]

    def run(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Execute until every member halts; returns the output arrays."""
        self.bind_inputs(inputs)
        self.scheduler.reset()
        step = self.step
        while step():
            pass
        return self.outputs()

    def step(self) -> bool:
        """Select and execute one basic block; False when all members halted."""
        return self.step_lanes() is not None

    def step_lanes(self) -> Optional[np.ndarray]:
        """Like :meth:`step`, but returns the executed lane indices.

        Returns ``None`` when every member has halted, else the (possibly
        empty-shaped) index array of lanes that were active in the executed
        block — the serving engine uses this for per-request step budgets.
        """
        i = self.scheduler.select(self.pcreg, self.exit_index)
        if i is None:
            return None
        self._steps += 1
        if self._steps > self.max_steps:
            raise ExecutionLimitExceeded(f"exceeded max_steps={self.max_steps}")
        self.instr.record_step()
        self.instr.record_dispatch()
        profiling = self.instr.track_blocks
        if self.track_occupancy or profiling:
            live = int(np.count_nonzero(self.pcreg < self.exit_index))
            if self.track_occupancy:
                self.instr.record_occupancy(live, self.batch_size)
        mask = self.pcreg == i
        idx = np.flatnonzero(mask)
        if profiling:
            # Mirror the primitive-level slot convention: the platform
            # offers the full batch width under masking but only the
            # gathered lanes under gather-scatter.
            slots = int(idx.size) if self.mode == "gather" else self.batch_size
            self.instr.record_block(i, int(idx.size), live, slots)
            hook = self._bound.block_hook
            if hook is not None:
                hook(self, i, idx)
        if self.block_executors is not None and self.block_executors[i] is not None:
            self.block_executors[i](self, mask, idx)
        else:
            self._block_fns[i](self, mask, idx)
        stepped = self._stepped_override
        if stepped is not None:
            # A superblock executed several member blocks in this one
            # dispatch; report every lane that did work in any of them.
            self._stepped_override = None
            return stepped
        return idx

    # -- lane lifecycle (continuous-batching serving) -----------------------------
    #
    # A lane whose program counter sits at ``exit_index`` is *vacant*: the
    # machine's masked steps never touch it, so its storage can be recycled
    # for a fresh logical thread without disturbing in-flight neighbors.
    # These hooks let :class:`repro.serve.Engine` retire finished members
    # and inject queued requests mid-flight instead of draining the batch.

    @property
    def entry_index(self) -> int:
        """Block index where a freshly injected member begins (the entry block)."""
        return 0

    def halted_mask(self) -> np.ndarray:
        """Boolean (Z,) mask of lanes whose member has reached the exit."""
        return self.pcreg >= self.exit_index

    def halt_lanes(self, idx: np.ndarray) -> None:
        """Force the lanes in ``idx`` to the exit (aborting their members)."""
        idx = np.asarray(idx, dtype=np.int64)
        self.pcreg[idx] = self.exit_index

    def reset_lanes(self, idx: np.ndarray) -> None:
        """Return the lanes in ``idx`` to the machine's initial state.

        Program counters go to the entry block, each lane's return-address
        stack is emptied down to the exit-index base frame (Algorithm 2's pc
        init), and every allocated storage zeroes those lanes — bitwise the
        state a fresh machine would give them.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return
        self.pcreg[idx] = self.entry_index
        self.addr_stack.reset_lanes(
            idx, top=np.full(idx.size, self.exit_index, dtype=np.int64)
        )
        for st in self.storages.values():
            st.reset_lanes(idx)
        self._bound.on_reset_lanes(idx)

    def inject_lanes(self, idx: np.ndarray, inputs: Sequence[np.ndarray]) -> None:
        """Start new members in the lanes ``idx`` with the given inputs.

        ``inputs`` carries one array per program input with leading dimension
        ``len(idx)`` (the gathered batch of the injected requests).  The
        lanes must be vacant; in-flight lanes are untouched.
        """
        idx = np.asarray(idx, dtype=np.int64)
        self.reset_lanes(idx)
        for name, value in self._validated_inputs(
            inputs, idx.size, "injected lane count"
        ):
            self.storage(name).write_at(idx, value)
        self._bound.on_inject_lanes(idx)

    def retire_lanes(self, idx: np.ndarray) -> List[np.ndarray]:
        """Gather the program outputs of the (halted) lanes in ``idx``.

        Returns one ``(len(idx), *event)`` array per program output; the
        lanes themselves stay vacant until the next injection.
        """
        idx = np.asarray(idx, dtype=np.int64)
        self._bound.on_retire_lanes(idx)
        return [self.storage(name).read_at(idx) for name in self.program.outputs]

    # -- lane checkpoint/resume (preemptive serving) -----------------------------
    #
    # snapshot_lane/restore_lane extend the lifecycle hooks above from
    # "recycle a *finished* lane" to "checkpoint a *mid-flight* lane":
    # the serving engine evicts a straggler (snapshot + halt + requeue) so
    # higher-priority work can take its lane, and later reinstalls the
    # snapshot — on this machine or on another shard's — to resume, not
    # restart, the evicted thread.

    def snapshot_lane(self, lane: int) -> LaneSnapshot:
        """Capture lane ``lane``'s state as a machine-independent snapshot.

        Safe between steps (temporaries are block-local, so nothing lives
        outside the storages, the pc, and the return-address stack).  The
        machine is not modified.
        """
        lane = int(lane)
        snapshot = LaneSnapshot(
            program=self.program,
            pc=int(self.pcreg[lane]),
            addr_frames=np.array(self.addr_stack.frames(lane), copy=True),
            storages={
                name: st.capture_lane(lane)
                for name, st in self.storages.items()
            },
            executor=self.plan.name,
        )
        self._bound.on_snapshot_lane(lane, snapshot)
        return snapshot

    def restore_lane(self, lane: int, snapshot: LaneSnapshot) -> None:
        """Reinstall ``snapshot`` into lane ``lane``, resuming its thread.

        The lane is reset first, then the snapshot's pc, return-address
        frames, and storage slices are written back; storages the snapshot
        never saw stay zeroed (the thread never wrote them, so it must
        write before reading them again).  Whatever occupied the lane is
        destroyed — the serving engine only restores into vacant lanes.

        Incompatibility is rejected *statically, before any machine state
        is touched*: ``ValueError`` on a program mismatch or an impossible
        pc, :class:`SnapshotIncompatibleError` (a
        :class:`~repro.vm.stack.StackOverflowError`) when this machine's
        ``max_stack_depth`` cannot hold the captured frames — naming the
        required vs available depth, instead of the old mid-restore
        overflow that left the lane half-written.
        """
        if snapshot.program is not self.program:
            raise ValueError(
                "lane snapshot was captured from a different program; "
                "snapshots only restore into machines bound to the same "
                "StackProgram"
            )
        if not (0 <= snapshot.pc <= self.exit_index):
            raise ValueError(
                f"lane snapshot pc {snapshot.pc} is outside this program's "
                f"pc range [0, {self.exit_index}]"
            )
        required = snapshot.required_depth()
        if required > self.max_stack_depth:
            raise SnapshotIncompatibleError(
                f"lane snapshot at pc={snapshot.pc} requires stack depth "
                f"{required} but this machine has max_stack_depth="
                f"{self.max_stack_depth}; restore it into a machine with "
                f"max_stack_depth >= {required}"
            )
        facts = getattr(self.plan, "facts", None)
        if facts is not None:
            # A snapshot claiming more frames than the verified bound was
            # not produced by this program — reject it even on a machine
            # deep enough to physically hold it.
            facts.check_snapshot_frames(required, self.max_stack_depth)
        lane = int(lane)
        idx = np.asarray([lane], dtype=np.int64)
        self.reset_lanes(idx)
        self.pcreg[lane] = snapshot.pc
        self.addr_stack.restore_lane(lane, snapshot.addr_frames)
        for name, payload in snapshot.storages.items():
            self.storage(name).restore_lane(lane, payload)
        self._bound.on_restore_lane(lane, snapshot)

    def observed_max_depth(self) -> int:
        """Peak logical stack depth any lane reached on this machine.

        The maximum over the return-address stack's and every variable
        stack's high-water mark, plus the implicit base frame — the exact
        runtime observable the verifier's static
        ``ProgramFacts.max_logical_depth`` bounds (and, for bounded
        programs whose deepest path executes, equals).
        """
        peak = self.addr_stack.high_water
        for st in self.storages.values():
            stack = getattr(st, "stack", None)
            if stack is not None:
                peak = max(peak, stack.high_water)
        return peak + 1

    # -- inspection (Figure 3 snapshots) ----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Runtime-state snapshot in the style of the paper's Figure 3."""
        stacks = {}
        for name, st in sorted(self.storages.items()):
            if isinstance(st, StackedStorage) and st.stack is not None:
                stacks[name] = {
                    "frames": [st.stack.frames(b) for b in range(self.batch_size)],
                    "stack_pointers": st.stack.sp.copy(),
                }
        return {
            "program_counter": self.pcreg.copy(),
            "pc_stack": {
                "frames": [self.addr_stack.frames(b) for b in range(self.batch_size)],
                "stack_pointers": self.addr_stack.sp.copy(),
            },
            "variable_stacks": stacks,
        }


def run_program_counter(
    program: Union[StackProgram, ExecutionPlan],
    inputs: Sequence[np.ndarray],
    registry: Optional[PrimitiveRegistry] = None,
    mode: str = "mask",
    scheduler: Any = "earliest",
    max_stack_depth: Optional[int] = None,
    top_cache: bool = True,
    instrumentation: Optional[Instrumentation] = None,
    max_steps: int = 10 ** 9,
    block_executors: Optional[Sequence[Optional[Callable]]] = None,
    executor: Any = None,
):
    """Run a stack program on a batch of inputs under Algorithm 2.

    ``program`` may be a bare :class:`StackProgram` (optionally with
    ``executor="eager"|"fused"`` or a :class:`~repro.vm.executors.BlockExecutor`)
    or a pre-compiled :class:`~repro.vm.executors.ExecutionPlan`.
    Returns a single array for single-output programs, else a tuple.
    """
    arrays = [np.asarray(x) for x in inputs]
    if not arrays:
        raise ValueError("at least one input is required")
    vm = ProgramCounterVM(
        program,
        batch_size=arrays[0].shape[0],
        registry=registry,
        mode=mode,
        scheduler=scheduler,
        max_stack_depth=max_stack_depth,
        top_cache=top_cache,
        instrumentation=instrumentation,
        max_steps=max_steps,
        block_executors=block_executors,
        executor=executor,
    )
    outputs = vm.run(arrays)
    return outputs[0] if len(outputs) == 1 else tuple(outputs)
