"""Batched per-variable stacks (paper Section 3 and Figure 3).

Storage layout: a data array of shape ``(D, Z, *event)`` plus a ``(Z,)``
vector of stack pointers, exactly as the paper describes ("we choose to give
each program variable its own stack (by extending the relevant array with
another dimension)").

:class:`BatchedStack` additionally implements the paper's optimization 4:
the *top* of each stack lives in a separate ``(Z, *event)`` cache array, so
repeated reads and in-place updates of the top cost a mask, not a gather or
scatter.  Gathers/scatters happen only at pushes and pops, where they are
unavoidable (stack depths differ across batch members).
:class:`UncachedBatchedStack` is the same structure *without* the cache —
every access gathers/scatters — used by the optimization-4 ablation.

Both classes use an *implicit base frame*: a freshly created stack has one
writable top (the cache / slot 0) at depth 0, so variables whose first write
is an in-place update need no initial push.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class StackOverflowError(RuntimeError):
    """A batch member exceeded the static stack depth limit D."""


class StackUnderflowError(RuntimeError):
    """A pop on an empty stack in strict mode (indicates a compiler bug)."""


def _broadcast_mask(mask: np.ndarray, ndim: int) -> np.ndarray:
    """Right-pad a (Z,) boolean mask so it broadcasts against (Z, *event)."""
    return mask.reshape(mask.shape + (1,) * (ndim - 1))


class BatchedStack:
    """Top-cached batched stack (optimization 4 ON).

    ``sp[b]`` counts the *saved* frames of member ``b`` below the cached
    top; the logical depth of the stack is ``sp[b] + 1`` (the implicit base
    frame).  The cache is authoritative for the top; ``data[0:sp[b], b]``
    holds the frames beneath it.
    """

    caching = True

    def __init__(
        self,
        batch_size: int,
        depth: int,
        event_shape: Tuple[int, ...] = (),
        dtype: str = "float64",
        strict: bool = False,
    ):
        self.batch_size = int(batch_size)
        self.depth = int(depth)
        self.event_shape = tuple(event_shape)
        self.dtype = np.dtype(dtype)
        self.strict = strict
        self.data = np.zeros((self.depth, self.batch_size) + self.event_shape, self.dtype)
        self.cache = np.zeros((self.batch_size,) + self.event_shape, self.dtype)
        self.sp = np.zeros(self.batch_size, dtype=np.int64)
        #: Highest saved-frame count any lane ever reached (machine lifetime,
        #: not reset by lane recycling).  The logical peak depth is
        #: ``high_water + 1``; the verifier's static bound is checked against
        #: this exact observable in the depth-equality tests.
        self.high_water = 0

    # -- reads -------------------------------------------------------------

    def read(self) -> np.ndarray:
        """Top values for all members (free: the cache itself)."""
        return self.cache

    def read_at(self, idx: np.ndarray) -> np.ndarray:
        """Top values gathered for the members in ``idx``."""
        return self.cache[idx]

    # -- masked operations ----------------------------------------------------

    def update(self, mask: np.ndarray, values: np.ndarray) -> None:
        """In-place update of the top for members where ``mask`` holds."""
        np.copyto(self.cache, values, where=_broadcast_mask(mask, self.cache.ndim))

    def push(self, mask: np.ndarray, values: np.ndarray) -> None:
        """Push ``values`` for members where ``mask`` holds (scatter)."""
        idx = np.flatnonzero(mask)
        self.push_at(idx, values[idx])

    def pop(self, mask: np.ndarray) -> np.ndarray:
        """Pop for members where ``mask`` holds; returns the popped tops.

        The returned array is full-batch-sized; lanes outside ``mask`` carry
        their (unpopped) current tops.
        """
        popped = self.cache.copy()
        idx = np.flatnonzero(mask)
        self.pop_at(idx)
        return popped

    # -- gathered (index-based) operations ---------------------------------

    def update_at(self, idx: np.ndarray, values: np.ndarray) -> None:
        self.cache[idx] = values

    def push_at(self, idx: np.ndarray, values: np.ndarray) -> None:
        if idx.size == 0:
            return
        sp = self.sp[idx]
        if np.any(sp >= self.depth):
            raise StackOverflowError(
                f"stack depth limit D={self.depth} exceeded; increase "
                "max_stack_depth"
            )
        # Spill the cached top into its slot, then cache the new values.
        self.data[sp, idx] = self.cache[idx]
        self.sp[idx] = sp + 1
        self.cache[idx] = values
        peak = int(sp.max()) + 1
        if peak > self.high_water:
            self.high_water = peak

    def pop_at(self, idx: np.ndarray) -> np.ndarray:
        """Pop for members in ``idx``; returns their popped top values."""
        if idx.size == 0:
            return self.cache[idx]
        popped = self.cache[idx]
        sp = self.sp[idx]
        if self.strict and np.any(sp <= 0):
            raise StackUnderflowError("pop on empty stack")
        new_sp = np.maximum(sp - 1, 0)
        self.cache[idx] = self.data[new_sp, idx]
        self.sp[idx] = new_sp
        return popped

    # -- lane lifecycle -----------------------------------------------------

    def reset_lanes(self, idx: np.ndarray, top: Optional[np.ndarray] = None) -> None:
        """Return the lanes in ``idx`` to the freshly-constructed state.

        The lane's saved frames are zeroed, its stack pointer drops to the
        implicit base frame, and its cached top becomes ``top`` (or zero).
        Used by the serving engine to recycle a lane for a new request.
        """
        if idx.size == 0:
            return
        self.sp[idx] = 0
        self.data[:, idx] = 0
        self.cache[idx] = 0 if top is None else top

    def restore_lane(self, lane: int, frames: np.ndarray) -> None:
        """Reinstall one lane from its logical frames (see :meth:`frames`).

        ``frames`` is a ``(depth, *event)`` array, bottom to top; the last
        row becomes the live top.  The frame representation is
        layout-independent, so a snapshot taken from a cached stack restores
        into an uncached one (and vice versa) — lane checkpoint/resume for
        the serving engine's preemption.  Slots above the restored depth are
        zeroed, so the lane is observationally identical to one that pushed
        exactly these frames.
        """
        frames = np.asarray(frames, dtype=self.dtype)
        sp = frames.shape[0] - 1
        if sp > self.depth:
            raise StackOverflowError(
                f"lane snapshot holds {sp} saved frames but this stack's "
                f"depth limit is D={self.depth}; increase max_stack_depth"
            )
        self.data[:, lane] = 0
        self.sp[lane] = sp
        if sp > self.high_water:
            self.high_water = sp
        if sp:
            self.data[:sp, lane] = frames[:-1]
        self.cache[lane] = frames[-1]

    # -- inspection -----------------------------------------------------------

    def depths(self) -> np.ndarray:
        """Logical depth per member (saved frames + the live top)."""
        return self.sp + 1

    def frames(self, member: int) -> np.ndarray:
        """All live frames of one member, bottom to top (for snapshots)."""
        saved = self.data[: self.sp[member], member]
        return np.concatenate([saved, self.cache[None, member]], axis=0)


class UncachedBatchedStack:
    """The same stack without the top cache (optimization 4 OFF).

    Every read gathers ``data[sp[b], b]`` and every update scatters — the
    cost the paper's optimization 4 exists to avoid.  Allocates ``D + 1``
    slots so depth counting matches :class:`BatchedStack`.
    """

    caching = False

    def __init__(
        self,
        batch_size: int,
        depth: int,
        event_shape: Tuple[int, ...] = (),
        dtype: str = "float64",
        strict: bool = False,
    ):
        self.batch_size = int(batch_size)
        self.depth = int(depth)
        self.event_shape = tuple(event_shape)
        self.dtype = np.dtype(dtype)
        self.strict = strict
        self.data = np.zeros(
            (self.depth + 1, self.batch_size) + self.event_shape, self.dtype
        )
        self.sp = np.zeros(self.batch_size, dtype=np.int64)
        self._lanes = np.arange(self.batch_size)
        #: Highest saved-frame count any lane ever reached (see
        #: :attr:`BatchedStack.high_water`).
        self.high_water = 0

    def read(self) -> np.ndarray:
        return self.data[self.sp, self._lanes]

    def read_at(self, idx: np.ndarray) -> np.ndarray:
        return self.data[self.sp[idx], idx]

    def update(self, mask: np.ndarray, values: np.ndarray) -> None:
        idx = np.flatnonzero(mask)
        self.update_at(idx, np.asarray(values)[idx])

    def update_at(self, idx: np.ndarray, values: np.ndarray) -> None:
        self.data[self.sp[idx], idx] = values

    def push(self, mask: np.ndarray, values: np.ndarray) -> None:
        idx = np.flatnonzero(mask)
        self.push_at(idx, np.asarray(values)[idx])

    def push_at(self, idx: np.ndarray, values: np.ndarray) -> None:
        if idx.size == 0:
            return
        sp = self.sp[idx]
        if np.any(sp >= self.depth):
            raise StackOverflowError(
                f"stack depth limit D={self.depth} exceeded; increase "
                "max_stack_depth"
            )
        self.sp[idx] = sp + 1
        self.data[sp + 1, idx] = values
        peak = int(sp.max()) + 1
        if peak > self.high_water:
            self.high_water = peak

    def pop(self, mask: np.ndarray) -> np.ndarray:
        popped = self.read()
        self.pop_at(np.flatnonzero(mask))
        return popped

    def pop_at(self, idx: np.ndarray) -> np.ndarray:
        if idx.size == 0:
            return self.data[self.sp[idx], idx]
        popped = self.data[self.sp[idx], idx]
        sp = self.sp[idx]
        if self.strict and np.any(sp <= 0):
            raise StackUnderflowError("pop on empty stack")
        self.sp[idx] = np.maximum(sp - 1, 0)
        return popped

    def reset_lanes(self, idx: np.ndarray, top: Optional[np.ndarray] = None) -> None:
        """Return the lanes in ``idx`` to the freshly-constructed state."""
        if idx.size == 0:
            return
        self.sp[idx] = 0
        self.data[:, idx] = 0
        if top is not None:
            self.data[0, idx] = top

    def restore_lane(self, lane: int, frames: np.ndarray) -> None:
        """Reinstall one lane from its logical frames (see :meth:`frames`)."""
        frames = np.asarray(frames, dtype=self.dtype)
        sp = frames.shape[0] - 1
        if sp > self.depth:
            raise StackOverflowError(
                f"lane snapshot holds {sp} saved frames but this stack's "
                f"depth limit is D={self.depth}; increase max_stack_depth"
            )
        self.data[:, lane] = 0
        self.sp[lane] = sp
        if sp > self.high_water:
            self.high_water = sp
        self.data[: sp + 1, lane] = frames

    def depths(self) -> np.ndarray:
        return self.sp + 1

    def frames(self, member: int) -> np.ndarray:
        return self.data[: self.sp[member] + 1, member]
