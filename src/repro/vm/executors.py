"""The pluggable block-executor layer.

The program-counter machine's step loop is strategy-agnostic: select a
block, compute its mask, execute it.  *How* a block executes — op-at-a-time
interpretation (the TF-Eager analog) or one pre-compiled fused callable per
block (the XLA analog) — is a backend choice, and this module is the seam
where backends plug in:

* :class:`BlockExecutor` — the protocol: given a VM instance, produce one
  callable per basic block, plus the dispatch accounting the device cost
  models need.
* :class:`EagerBlockExecutor` — the reference implementation: the stack-IR
  interpreter that used to live inside ``ProgramCounterVM._interpret_block``,
  one Python-level dispatch per primitive.
* :class:`~repro.backend.fusion.FusedBlockExecutor` — each block generated
  as straight-line Python, one dispatch per block (registered lazily so the
  VM layer never imports the backend).
* :class:`ExecutionPlan` — a program plus its lowering options and executor
  choice, compiled once (and cached on
  :class:`~repro.frontend.api.AutobatchFunction`), bound per machine via
  :meth:`ExecutionPlan.bind`.

A future array backend (a non-numpy kernel set, a real accelerator bridge)
implements :class:`BlockExecutor` and registers itself with
:func:`register_executor`; nothing above this layer changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Type, Union

import numpy as np

from repro.ir.instructions import (
    Branch,
    ConstOp,
    Jump,
    PopOp,
    PrimOp,
    PushJump,
    PushOp,
    Return,
    StackProgram,
)
from repro.lowering.pipeline import LoweringOptions, normalize_lowering_options
from repro.vm.instrumentation import Instrumentation, elements_per_lane
from repro.vm.local_static import _const_array


class BlockExecutor:
    """Strategy object turning a program's blocks into per-block callables.

    Subclasses implement :meth:`bind`; everything else in the machine —
    scheduling, masking, lane lifecycle — is executor-independent.  Each
    bound callable has the signature ``(vm, mask, idx)`` and must leave the
    machine state (storages, pc register, address stack, instrumentation)
    exactly as the eager interpreter would: executors are *observationally
    interchangeable*, which the differential tests enforce bit-for-bit.
    """

    #: Name used in ``executor="..."`` selection and plan cache keys.
    name: str = "abstract"
    #: Dispatch accounting family for the device cost models
    #: (``"eager"`` = per-op launches, ``"fused"`` = per-block launches).
    accounting: str = "eager"
    #: Expensive per-program compilation events (codegen + ``compile()``)
    #: this executor has performed.  Binding an already-compiled program to
    #: another machine must NOT increase it — that is the code-cache-sharing
    #: contract multi-engine serving relies on, and the regression tests pin
    #: it down.  Executors with no compile step (the eager interpreter)
    #: leave it at 0.
    compile_count: int = 0

    def bind(self, vm: Any) -> List[Callable]:
        """One callable per block of ``vm.program``, closed over ``vm``."""
        raise NotImplementedError

    def dispatch_count(self, instr: Instrumentation) -> int:
        """Host-issued batched-array-op launches for a run under this executor.

        The full count — primitive kernels plus stack and storage
        scatter/gather traffic — used by the serving/bench reports.
        """
        raise NotImplementedError

    def device_dispatch_count(self, instr: Instrumentation) -> int:
        """Compute-kernel launches only, for the device cost models.

        Narrower than :meth:`dispatch_count` so strategies whose
        instrumentation does not cover storage traffic (the local machine)
        stay comparable in one simulated figure; storage traffic is charged
        separately by :meth:`~repro.backend.device.DeviceModel.estimate`.
        """
        raise NotImplementedError

    # -- lane-lifecycle hooks (continuous-batching serving) -----------------
    #
    # The serving engine recycles lanes mid-flight; executors that cache
    # per-lane state must invalidate it here.  The built-in executors keep
    # no such state, so the defaults are no-ops — but the seam exists so a
    # backend with persistent device buffers can participate in serving.

    def on_reset_lanes(self, vm: Any, idx: np.ndarray) -> None:
        """Lanes ``idx`` were returned to the initial machine state."""

    def on_inject_lanes(self, vm: Any, idx: np.ndarray) -> None:
        """Fresh members were injected into lanes ``idx``."""

    def on_retire_lanes(self, vm: Any, idx: np.ndarray) -> None:
        """Outputs of halted lanes ``idx`` were gathered for delivery."""

    def on_snapshot_lane(self, vm: Any, lane: int, snapshot: Any) -> None:
        """Lane ``lane``'s state was captured into ``snapshot`` (preemption).

        An executor holding per-lane device state must fold it into the
        snapshot here so a later :meth:`on_restore_lane` — possibly on a
        *different* machine bound to the same plan — can reinstall it.
        """

    def on_restore_lane(self, vm: Any, lane: int, snapshot: Any) -> None:
        """Lane ``lane`` was reinstalled from ``snapshot`` (resume)."""

    def on_block_executed(self, vm: Any, index: int, idx: np.ndarray) -> None:
        """Block ``index`` is about to run with active lanes ``idx``.

        Only fired when the machine's per-block profiling is armed
        (``vm.instr.track_blocks``), so the hot path stays hook-free by
        default.  A backend can use it to attribute device-side counters
        (kernel time, memory traffic) to basic blocks, feeding the same
        :class:`~repro.observe.BlockProfile` reports the built-in
        lane-accounting does.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _InterpretedBlock:
    """One block's op-at-a-time execution plan (the eager path)."""

    __slots__ = ("steps",)

    def __init__(self, vm: Any, block) -> None:
        registry = vm.registry
        steps: List[tuple] = []
        for op in block.ops:
            if isinstance(op, ConstOp):
                steps.append(("const", op.output, op.value))
            elif isinstance(op, PrimOp):
                steps.append(("prim", registry.get(op.fn), op.outputs, op.inputs))
            elif isinstance(op, PushOp):
                steps.append(("push", registry.get(op.fn), op.output, op.inputs))
            elif isinstance(op, PopOp):
                steps.append(("pop", op.var))
            else:
                raise TypeError(f"unexpected op in stack IR: {op!r}")
        term = block.terminator
        if isinstance(term, Jump):
            steps.append(("jump", term.target))
        elif isinstance(term, Branch):
            steps.append(("branch", term.cond, term.true_target, term.false_target))
        elif isinstance(term, PushJump):
            steps.append(("pushjump", term.return_target, term.jump_target))
        elif isinstance(term, Return):
            steps.append(("ret",))
        else:
            raise TypeError(f"unexpected terminator in stack IR: {term!r}")
        self.steps = steps

    def __call__(self, vm: Any, mask: np.ndarray, idx: np.ndarray) -> None:
        temps = vm._temps
        temps.clear()
        gather = vm.mode == "gather"
        ridx = idx if gather else None
        slots = int(idx.size) if gather else vm.batch_size
        n_active = int(idx.size)

        for step in self.steps:
            tag = step[0]
            if tag == "prim":
                _, prim, outputs, inputs = step
                args = [vm._read(v, ridx) for v in inputs]
                with np.errstate(all="ignore"):
                    out = prim.fn(*args)
                outs = out if prim.n_outputs > 1 else (out,)
                for name, value in zip(outputs, outs):
                    vm._write(name, value, mask, idx)
                vm.instr.record_prim(
                    prim.name,
                    prim.tags,
                    n_active,
                    slots,
                    elements=elements_per_lane(outs[0]),
                    weight=prim.cost_weight,
                )
            elif tag == "const":
                _, name, value = step
                width = idx.size if gather else vm.batch_size
                vm._write(name, _const_array(value, width), mask, idx)
            elif tag == "push":
                _, prim, output, inputs = step
                args = [vm._read(v, ridx) for v in inputs]
                with np.errstate(all="ignore"):
                    value = prim.fn(*args)
                st = vm.storage(output)
                if gather:
                    st.push_at(idx, np.asarray(value))
                else:
                    st.push(mask, np.asarray(value))
                vm.instr.record_push(n_active)
            elif tag == "pop":
                _, name = step
                st = vm.storage(name)
                if gather:
                    st.pop_at(idx)
                else:
                    st.pop(mask)
                vm.instr.record_pop(n_active)
            elif tag == "jump":
                vm.pcreg[mask] = step[1]
            elif tag == "branch":
                _, cond_var, t_true, t_false = step
                cond = np.asarray(vm._read(cond_var, ridx), dtype=bool)
                if gather:
                    vm.pcreg[idx] = np.where(cond, t_true, t_false)
                else:
                    vm.pcreg[mask] = np.where(cond, t_true, t_false)[mask]
            elif tag == "pushjump":
                _, ret_target, jump_target = step
                vm.addr_stack.push(
                    mask, np.full(vm.batch_size, ret_target, dtype=np.int64)
                )
                vm.pcreg[mask] = jump_target
            else:  # ret
                popped = vm.addr_stack.pop(mask)
                vm.pcreg[mask] = popped[mask]


class EagerBlockExecutor(BlockExecutor):
    """Op-at-a-time interpretation: one Python dispatch per primitive.

    This is the reference executor — the paper's "TensorFlow Eager"
    analog — and the only one that supports gather-scatter mode (fusion
    requires the statically known shapes of masking).
    """

    name = "eager"
    accounting = "eager"

    def bind(self, vm: Any) -> List[Callable]:
        return [_InterpretedBlock(vm, blk) for blk in vm.program.blocks]

    def dispatch_count(self, instr: Instrumentation) -> int:
        """Every batched array op the host issues is one eager dispatch:
        primitive kernels, stack scatters/gathers, and masked storage
        updates all launch separately."""
        return (
            instr.kernel_calls
            + instr.pushes
            + instr.pops
            + instr.stacked_reads
            + instr.stacked_writes
            + instr.register_writes
        )

    def device_dispatch_count(self, instr: Instrumentation) -> int:
        """One device launch per primitive kernel (TF-Eager accounting)."""
        return instr.kernel_calls


class PlanStats:
    """Mutable per-plan counters (the plan itself stays frozen/hashable-free).

    ``bind_count`` is the number of machines the plan has been attached to;
    together with the executor's ``compile_count`` it proves the
    compile-once-bind-many property: a fleet of N same-width machines shows
    ``bind_count == N`` with ``compile_count == 1``.
    """

    __slots__ = ("bind_count",)

    def __init__(self) -> None:
        self.bind_count = 0

    def __repr__(self) -> str:
        return f"PlanStats(bind_count={self.bind_count})"


class BoundPlan:
    """An :class:`ExecutionPlan` attached to one machine instance.

    Holds the per-block callables and forwards the VM's lane-lifecycle
    events to the executor, so serving-engine recycling works no matter
    which backend runs the blocks.
    """

    __slots__ = ("plan", "vm", "blocks", "block_hook")

    def __init__(self, plan: "ExecutionPlan", vm: Any, blocks: List[Callable]):
        if len(blocks) != len(plan.program.blocks):
            raise ValueError(
                f"executor produced {len(blocks)} block callables for a "
                f"{len(plan.program.blocks)}-block program"
            )
        self.plan = plan
        self.vm = vm
        self.blocks = blocks
        # Resolved once per binding: None when the executor left the base
        # no-op in place, so the profiling step skips the double dispatch
        # entirely (it fires once per machine step when armed).
        hook = type(plan.executor).on_block_executed
        self.block_hook = (
            None
            if hook is BlockExecutor.on_block_executed
            else plan.executor.on_block_executed
        )

    def on_reset_lanes(self, idx: np.ndarray) -> None:
        self.plan.executor.on_reset_lanes(self.vm, idx)

    def on_inject_lanes(self, idx: np.ndarray) -> None:
        self.plan.executor.on_inject_lanes(self.vm, idx)

    def on_retire_lanes(self, idx: np.ndarray) -> None:
        self.plan.executor.on_retire_lanes(self.vm, idx)

    def on_snapshot_lane(self, lane: int, snapshot: Any) -> None:
        self.plan.executor.on_snapshot_lane(self.vm, lane, snapshot)

    def on_restore_lane(self, lane: int, snapshot: Any) -> None:
        self.plan.executor.on_restore_lane(self.vm, lane, snapshot)

    def on_block_executed(self, index: int, idx: np.ndarray) -> None:
        if self.block_hook is not None:
            self.block_hook(self.vm, index, idx)

    def __repr__(self) -> str:
        return f"BoundPlan({self.plan.executor.name!r}, blocks={len(self.blocks)})"


@dataclass(frozen=True)
class ExecutionPlan:
    """A lowered program plus the choice of how to execute its blocks.

    The plan is machine-independent (compiled once, cached on
    :class:`~repro.frontend.api.AutobatchFunction` keyed by executor name
    and :class:`~repro.lowering.pipeline.LoweringOptions`); :meth:`bind`
    attaches it to one :class:`~repro.vm.program_counter.ProgramCounterVM`,
    producing the per-block callables that machine's step loop dispatches
    through.
    """

    program: StackProgram
    executor: BlockExecutor
    options: Optional[LoweringOptions] = None
    #: Mutable binding counters; excluded from equality so two plans over
    #: the same (program, executor, options) still compare equal.
    stats: PlanStats = field(default_factory=PlanStats, compare=False, repr=False)
    #: :class:`~repro.analysis.stackcheck.ProgramFacts` from static
    #: verification (None until :meth:`verify` runs, or forever under
    #: ``verify=False``).  Machines pre-size their batched stacks from
    #: ``facts.required_stack_depth`` when no explicit depth is given.
    facts: Optional[Any] = field(default=None, compare=False, repr=False)

    @classmethod
    def compile(
        cls,
        program: Any,
        executor: Union[str, BlockExecutor] = "eager",
        optimize: Union[bool, LoweringOptions] = True,
        verify: bool = True,
    ) -> "ExecutionPlan":
        """Build a plan from a :class:`StackProgram`, an
        :class:`~repro.frontend.api.AutobatchFunction` (or anything with a
        ``stack_program(optimize=...)`` method), with the executor given by
        name or instance.

        ``verify=True`` (the default) statically verifies the program —
        stack-effect safety, depth bounds, region-table consistency — once
        per plan, caching the proven :class:`ProgramFacts` on it; pass
        ``verify=False`` to opt out (e.g. deliberately ill-formed inputs in
        negative tests).
        """
        if hasattr(program, "execution_plan"):
            # Delegate the *raw* spec so the function's per-(executor,
            # options) plan cache can key on the name.
            return program.execution_plan(
                executor=executor, optimize=optimize, verify=verify
            )
        ex = resolve_executor(executor)
        if isinstance(program, StackProgram):
            opts = optimize if isinstance(optimize, LoweringOptions) else None
            plan = cls(program=program, executor=ex, options=opts)
        elif hasattr(program, "stack_program"):
            opts = normalize_lowering_options(optimize)
            plan = cls(
                program=program.stack_program(optimize=opts),
                executor=ex,
                options=opts,
            )
        else:
            raise TypeError(
                "program must be a StackProgram or provide .stack_program(), "
                f"got {type(program).__name__}"
            )
        if verify:
            plan.verify()
        return plan

    def verify(self, facts: Optional[Any] = None) -> Any:
        """Statically verify the program (and region table) once per plan.

        Runs the :mod:`repro.analysis.stackcheck` abstract interpreter —
        or accepts already-proven ``facts`` for this same program, so a
        function's per-options facts cache is shared across executor
        plans — then checks the executor's superblock region table (when it
        has one) against the verified CFG.  The resulting
        :class:`~repro.analysis.stackcheck.ProgramFacts` is cached on the
        plan; repeat calls are free.  Raises
        :class:`~repro.analysis.stackcheck.VerificationError` on any
        error-severity finding.
        """
        if self.facts is not None:
            return self.facts
        from repro.analysis.stackcheck import (
            verify_region_table,
            verify_stack_program,
        )

        if facts is None:
            facts = verify_stack_program(self.program)
        regions_for = getattr(self.executor, "regions_for", None)
        if regions_for is not None:
            verify_region_table(self.program, regions_for(self.program), facts)
        object.__setattr__(self, "facts", facts)
        return facts

    @property
    def name(self) -> str:
        """The executor's selection name (``"eager"``, ``"fused"``, ...)."""
        return self.executor.name

    @property
    def accounting(self) -> str:
        """Dispatch-accounting family for the device cost models."""
        return self.executor.accounting

    def dispatch_count(self, instr: Instrumentation) -> int:
        """Host-issued array-op launches for a run summarized by ``instr``."""
        return self.executor.dispatch_count(instr)

    def device_dispatch_count(self, instr: Instrumentation) -> int:
        """Compute-kernel launches only (device cost-model accounting)."""
        return self.executor.device_dispatch_count(instr)

    def bind(self, vm: Any) -> BoundPlan:
        """Compile/attach the per-block callables for one machine.

        One plan binds to arbitrarily many machines of the same width
        concurrently — each binding resolves its own per-VM state (storage
        handles, batch-width constants) while the expensive compile work is
        shared, which is what lets a multi-engine cluster serve one code
        cache.  ``self.stats.bind_count`` tracks the bindings.
        """
        bound = BoundPlan(self, vm, list(self.executor.bind(vm)))
        self.stats.bind_count += 1
        return bound

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan(executor={self.executor.name!r}, "
            f"blocks={len(self.program.blocks)}, options={self.options!r})"
        )


#: Executor factories by selection name.  The fused executor registers
#: itself on first use (``repro.backend.fusion`` imports this module, not
#: the other way around).
_EXECUTOR_FACTORIES: Dict[str, Type[BlockExecutor]] = {
    EagerBlockExecutor.name: EagerBlockExecutor,
}


def register_executor(name: str, factory: Type[BlockExecutor]) -> None:
    """Make ``executor=name`` resolvable everywhere (idempotent)."""
    existing = _EXECUTOR_FACTORIES.get(name)
    if existing is not None and existing is not factory:
        raise ValueError(f"executor name {name!r} is already registered")
    _EXECUTOR_FACTORIES[name] = factory


def executor_names() -> Sequence[str]:
    """Currently registered executor selection names."""
    _load_backend_executors()
    return tuple(sorted(_EXECUTOR_FACTORIES))


def _load_backend_executors() -> None:
    # The backend package registers its executors at import; importing it
    # lazily keeps repro.vm importable without repro.backend and avoids a
    # circular import (fusion.py imports this module).
    import repro.backend.fusion  # noqa: F401


def resolve_executor(spec: Union[str, BlockExecutor, None]) -> BlockExecutor:
    """Turn an ``executor=`` argument into a :class:`BlockExecutor`."""
    if spec is None:
        return EagerBlockExecutor()
    if isinstance(spec, BlockExecutor):
        return spec
    if isinstance(spec, type) and issubclass(spec, BlockExecutor):
        return spec()
    if not isinstance(spec, str):
        raise TypeError(
            f"executor must be a name or a BlockExecutor, got {type(spec).__name__}"
        )
    if spec not in _EXECUTOR_FACTORIES:
        _load_backend_executors()
    try:
        factory = _EXECUTOR_FACTORIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown executor {spec!r}; known: {sorted(_EXECUTOR_FACTORIES)}"
        )
    return factory()
