"""The two autobatching runtimes.

* :mod:`repro.vm.local_static` — Algorithm 1: a masked nonstandard
  interpretation of the callable IR, with recursion inherited from the host
  Python (Figure 1).
* :mod:`repro.vm.program_counter` — Algorithm 2: a flat, non-recursive
  batched machine over the stack IR, with per-variable stacks and a
  program-counter stack (Figure 3).

Shared machinery: batched stacks with top caching (:mod:`repro.vm.stack`),
storage classes (:mod:`repro.vm.state`), masking vs gather-scatter primitive
application (:mod:`repro.vm.masking`), block-selection heuristics
(:mod:`repro.vm.scheduler`), execution counters
(:mod:`repro.vm.instrumentation`), the pluggable block-executor layer
(:mod:`repro.vm.executors`) that lets backends swap how the program-counter
machine runs each basic block (eager interpretation vs fused codegen), and
the versioned lane-snapshot wire format (:mod:`repro.vm.snapshot_codec`)
that lets a checkpointed lane leave process memory — spilled, journaled,
or migrated — with integrity and admission checks on the way back in.
"""

from repro.vm.executors import (
    BlockExecutor,
    EagerBlockExecutor,
    ExecutionPlan,
    executor_names,
    register_executor,
    resolve_executor,
)
from repro.vm.local_static import run_local_static
from repro.vm.program_counter import (
    LaneSnapshot,
    ProgramCounterVM,
    SnapshotIncompatibleError,
    run_program_counter,
)
from repro.vm.instrumentation import Instrumentation
from repro.vm.snapshot_codec import (
    ExecutorStateError,
    SnapshotCodecError,
    SnapshotDecodeError,
    SnapshotProgramMismatchError,
    program_fingerprint,
)
from repro.vm.stack import BatchedStack, StackOverflowError, UncachedBatchedStack

__all__ = [
    "run_local_static",
    "run_program_counter",
    "LaneSnapshot",
    "ProgramCounterVM",
    "SnapshotIncompatibleError",
    "SnapshotCodecError",
    "SnapshotDecodeError",
    "SnapshotProgramMismatchError",
    "ExecutorStateError",
    "program_fingerprint",
    "Instrumentation",
    "BatchedStack",
    "UncachedBatchedStack",
    "StackOverflowError",
    "BlockExecutor",
    "EagerBlockExecutor",
    "ExecutionPlan",
    "executor_names",
    "register_executor",
    "resolve_executor",
]
