"""Local static autobatching — the paper's Algorithm 1.

A nonstandard, masked interpretation of the callable IR.  The interpreter
keeps, per function activation, batched storage for every variable, an
active-set mask, and a vector program counter; at each step it picks a basic
block some active member is waiting at (earliest in program order by
default), executes it for the whole batch, and commits results only for the
locally active members.

``CallOp`` recurses through the host Python, exactly as in Figure 1: logical
threads with different call stacks live in different Python-level
interpreter frames and therefore cannot batch together — the limitation
program-counter autobatching removes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.frontend.registry import PrimitiveRegistry, default_registry
from repro.ir.instructions import (
    Branch,
    CallOp,
    ConstOp,
    Function,
    Jump,
    PrimOp,
    Program,
    Return,
)
from repro.ir.validate import validate_program
from repro.vm.instrumentation import Instrumentation, elements_per_lane
from repro.vm.scheduler import make_scheduler
from repro.vm.state import RegisterStorage


class ExecutionLimitExceeded(RuntimeError):
    """The step budget ran out (non-termination or block starvation)."""


def _const_array(value: Any, batch_size: int) -> np.ndarray:
    if isinstance(value, bool):
        return np.full(batch_size, value, dtype=bool)
    if isinstance(value, int):
        return np.full(batch_size, value, dtype=np.int64)
    return np.full(batch_size, value, dtype=np.float64)


class _PreparedFunction:
    """A function with block targets resolved to indices, ready to run."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.n_blocks = len(fn.blocks)
        self.blocks = fn.blocks
        self.targets: List[Any] = []
        for blk in fn.blocks:
            term = blk.terminator
            if isinstance(term, Jump):
                self.targets.append(("jump", fn.block_index(term.target)))
            elif isinstance(term, Branch):
                self.targets.append(
                    (
                        "branch",
                        term.cond,
                        fn.block_index(term.true_target),
                        fn.block_index(term.false_target),
                    )
                )
            elif isinstance(term, Return):
                self.targets.append(("return",))
            else:
                raise TypeError(f"unexpected terminator {term!r}")


class LocalStaticInterpreter:
    """Algorithm 1, with masking or gather-scatter primitive application."""

    def __init__(
        self,
        program: Program,
        registry: Optional[PrimitiveRegistry] = None,
        mode: str = "mask",
        scheduler: Any = "earliest",
        instrumentation: Optional[Instrumentation] = None,
        max_steps: int = 10 ** 9,
        on_step: Optional[Any] = None,
        fuse_blocks: bool = False,
    ):
        validate_program(program)
        if mode not in ("mask", "gather"):
            raise ValueError(f"mode must be 'mask' or 'gather', got {mode!r}")
        if fuse_blocks and mode != "mask":
            raise ValueError(
                "block fusion requires masking mode (gather-scatter has "
                "statically indeterminate intermediate shapes)"
            )
        self.program = program
        self.registry = registry or default_registry
        self.mode = mode
        self.scheduler_spec = scheduler
        self.instr = instrumentation or Instrumentation()
        self.max_steps = max_steps
        #: Optional ``on_step(interp, block_index, mask)`` callback, fired
        #: before each block execution.  Together with :attr:`frames` this
        #: lets tooling snapshot the Python-stack runtime state of Figure 1.
        self.on_step = on_step
        #: Live activation stack: (fn_name, env, pc, active) per Python frame.
        self.frames: List[Dict[str, Any]] = []
        #: Hybrid strategy (paper Section 4): interpret control, run each
        #: block's straight-line primitive runs as one fused dispatch.
        self.fuse_blocks = fuse_blocks
        self._fused_plans: Dict[str, List[List[Any]]] = {}
        self._fused_batch_size: Optional[int] = None
        self._prepared: Dict[str, _PreparedFunction] = {
            name: _PreparedFunction(fn) for name, fn in program.functions.items()
        }
        self._steps_used = 0

    # -- public API -----------------------------------------------------------

    def run(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Run the whole batch through the main function (Algorithm 1)."""
        arrays = [np.asarray(x) for x in inputs]
        if not arrays:
            raise ValueError("at least one input is required")
        batch_size = arrays[0].shape[0]
        for a in arrays:
            if a.shape[0] != batch_size:
                raise ValueError("all inputs must share the leading batch dimension")
        self.instr.batch_size = batch_size
        active = np.ones(batch_size, dtype=bool)
        return self.call(self.program.main, arrays, active)

    # -- Algorithm 1 ------------------------------------------------------------

    def call(
        self,
        fn_name: str,
        args: Sequence[np.ndarray],
        active: np.ndarray,
    ) -> List[np.ndarray]:
        prepared = self._prepared[fn_name]
        fn = prepared.fn
        batch_size = active.shape[0]
        exit_index = prepared.n_blocks
        env: Dict[str, RegisterStorage] = {}

        def storage(name: str) -> RegisterStorage:
            st = env.get(name)
            if st is None:
                st = env[name] = RegisterStorage(name, batch_size)
            return st

        for param, arg in zip(fn.params, args):
            storage(param).write(active, np.asarray(arg))

        pc = np.zeros(batch_size, dtype=np.int64)
        scheduler = make_scheduler(self.scheduler_spec)
        inactive = ~active
        frame = {"fn": fn_name, "env": env, "pc": pc, "active": active}
        self.frames.append(frame)

        try:
            while True:
                pc_view = np.where(inactive, exit_index, pc)
                i = scheduler.select(pc_view, exit_index)
                if i is None:
                    break
                self._steps_used += 1
                if self._steps_used > self.max_steps:
                    raise ExecutionLimitExceeded(
                        f"exceeded max_steps={self.max_steps} in {fn_name!r}"
                    )
                self.instr.record_step()
                mask = pc_view == i
                idx = np.flatnonzero(mask)
                block = prepared.blocks[i]
                if self.on_step is not None:
                    self.on_step(self, i, mask)

                if self.fuse_blocks:
                    for segment in self._plans_for(fn_name, batch_size)[i]:
                        if isinstance(segment, CallOp):
                            args = [
                                np.asarray(storage(v).read())
                                for v in segment.inputs
                            ]
                            results = self.call(segment.func, args, mask.copy())
                            for name, value in zip(segment.outputs, results):
                                storage(name).write(mask, np.asarray(value))
                        else:
                            segment(storage, mask)
                else:
                    for op in block.ops:
                        self._execute_op(op, env, storage, mask, idx, batch_size)

                target = prepared.targets[i]
                if target[0] == "jump":
                    pc[mask] = target[1]
                elif target[0] == "branch":
                    _, cond_var, t_true, t_false = target
                    if self.mode == "mask":
                        cond = np.asarray(storage(cond_var).read(), dtype=bool)
                        pc[mask] = np.where(cond, t_true, t_false)[mask]
                    else:
                        cond = np.asarray(storage(cond_var).read_at(idx), dtype=bool)
                        pc[idx] = np.where(cond, t_true, t_false)
                else:  # return
                    pc[mask] = exit_index
        finally:
            self.frames.pop()

        return [storage(o).read() for o in fn.outputs]

    def _plans_for(self, fn_name: str, batch_size: int) -> List[List[Any]]:
        """Lazily compiled fused-segment plans, per function."""
        if self._fused_batch_size is None:
            self._fused_batch_size = batch_size
        elif self._fused_batch_size != batch_size:  # pragma: no cover - guard
            raise ValueError("batch size changed between activations")
        plans = self._fused_plans.get(fn_name)
        if plans is None:
            from repro.backend.local_fusion import compile_local_executors

            plans = compile_local_executors(
                self.program.functions[fn_name], self.registry, batch_size
            )
            self._fused_plans[fn_name] = plans
        return plans

    # -- operations -------------------------------------------------------------

    def _execute_op(self, op, env, storage, mask, idx, batch_size) -> None:
        if isinstance(op, ConstOp):
            if self.mode == "mask":
                storage(op.output).write(mask, _const_array(op.value, batch_size))
            else:
                storage(op.output).write_at(idx, _const_array(op.value, idx.size))
            return

        if isinstance(op, PrimOp):
            prim = self.registry.get(op.fn)
            if self.mode == "mask":
                args = [storage(v).read() for v in op.inputs]
                with np.errstate(all="ignore"):
                    out = prim.fn(*args)
                outs = out if prim.n_outputs > 1 else (out,)
                for name, value in zip(op.outputs, outs):
                    storage(name).write(mask, np.asarray(value))
                self.instr.record_prim(
                    prim.name,
                    prim.tags,
                    active=int(idx.size),
                    slots=batch_size,
                    elements=elements_per_lane(outs[0]),
                    weight=prim.cost_weight,
                )
            else:
                args = [storage(v).read_at(idx) for v in op.inputs]
                out = prim.fn(*args)
                outs = out if prim.n_outputs > 1 else (out,)
                for name, value in zip(op.outputs, outs):
                    storage(name).write_at(idx, np.asarray(value))
                self.instr.record_prim(
                    prim.name,
                    prim.tags,
                    active=int(idx.size),
                    slots=int(idx.size),
                    elements=elements_per_lane(outs[0]),
                    weight=prim.cost_weight,
                )
            return

        if isinstance(op, CallOp):
            # Recursion through the host Python, as in Figure 1.  The callee
            # sees the full batch width; only `mask` members are active.
            args = [np.asarray(storage(v).read()) for v in op.inputs]
            results = self.call(op.func, args, mask.copy())
            for name, value in zip(op.outputs, results):
                storage(name).write(mask, np.asarray(value))
            return

        raise TypeError(f"unexpected op in callable IR: {op!r}")


def run_local_static(
    program: Program,
    inputs: Sequence[np.ndarray],
    registry: Optional[PrimitiveRegistry] = None,
    mode: str = "mask",
    scheduler: Any = "earliest",
    instrumentation: Optional[Instrumentation] = None,
    max_steps: int = 10 ** 9,
    fuse_blocks: bool = False,
):
    """Run ``program`` on a batch of inputs under Algorithm 1.

    ``fuse_blocks=True`` selects the paper's hybrid strategy: control stays
    interpreted while each block's straight-line primitive runs execute as
    single fused dispatches.  Returns a single array for single-output
    programs, else a tuple.
    """
    interp = LocalStaticInterpreter(
        program,
        registry=registry,
        mode=mode,
        scheduler=scheduler,
        instrumentation=instrumentation,
        max_steps=max_steps,
        fuse_blocks=fuse_blocks,
    )
    outputs = interp.run(inputs)
    return outputs[0] if len(outputs) == 1 else tuple(outputs)
