"""Versioned binary codec for :class:`~repro.vm.program_counter.LaneSnapshot`.

Because the program-counter machine keeps all recursive state explicit, a
mid-flight lane is just a handful of arrays — which means it can leave
process memory entirely: spilled to disk under a resident-snapshot cap,
checkpointed into an admission journal, or shipped to another host.  This
module is the wire format that makes that safe:

* **Self-describing** — magic, format version, and per-array dtype/shape
  headers, so a decoder never guesses layout.
* **Program-fingerprinted** — a SHA-256 digest of the program's canonical
  text rides in the header; bytes captured under one program refuse to
  decode against another (:class:`SnapshotProgramMismatchError`), the
  cross-process analogue of ``restore_lane``'s ``program is not
  self.program`` identity check.
* **Integrity-checked** — a CRC32 trailer over the whole body, so any
  flipped or truncated byte is a typed :class:`SnapshotDecodeError`, never
  a silently corrupt lane.
* **Admission-checked before allocation** — :func:`decode_snapshot` parses
  array *headers* first, computes the snapshot's required stack depth from
  shapes alone, and runs the same static admission as
  ``ProgramCounterVM.restore_lane`` (depth vs ``max_stack_depth``, frames
  vs the verifier's proven bound via
  :meth:`~repro.analysis.stackcheck.ProgramFacts.check_snapshot_frames`)
  *before materializing a single payload array*.  Corrupt, cross-program,
  or forged-depth bytes are rejected with no lane state — not even
  detached arrays — ever allocated.
* **Executor-extra safe** — ``executor_state`` stashed by
  ``on_snapshot_lane`` hooks round-trips (ndarray or JSON-serializable
  values); anything else raises :class:`ExecutorStateError` naming the
  executor, so device state is never dropped silently in transport.

Layout (all integers little-endian)::

    magic b"RPLS" | u16 version | sha256 fingerprint (32 bytes)
    | i64 pc | str executor
    | array addr_frames
    | u32 n_storages | { str name | u8 tag (0=None, 1=array) | [array] }*
    | u32 n_extras   | { str key  | u8 tag (0=array, 1=json)  | payload }*
    | u32 crc32(everything above)

where ``str`` is a u32-length-prefixed UTF-8 string and ``array`` is
``str dtype.str | u8 ndim | u64 dim* | u64 nbytes | raw tobytes()``.
Storages and extras are written in sorted-name order, so identical
snapshots always encode to identical bytes (checkpoint diffs and
content-addressed spill stores work).
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.ir.instructions import StackProgram, VarKind
from repro.vm.program_counter import LaneSnapshot, SnapshotIncompatibleError

MAGIC = b"RPLS"
VERSION = 1


class SnapshotCodecError(ValueError):
    """Base class for snapshot wire-format failures.

    Subclasses ``ValueError`` so the serving engine's existing
    fail-only-this-handle resume path catches codec failures without any
    new except clauses.
    """


class SnapshotDecodeError(SnapshotCodecError):
    """The bytes are not a well-formed snapshot (corrupt, truncated,
    wrong magic/version, failed CRC, or structurally invalid fields)."""


class SnapshotProgramMismatchError(SnapshotCodecError):
    """The bytes were captured under a different program than the one
    offered for decoding (fingerprint mismatch)."""


class ExecutorStateError(TypeError):
    """An ``executor_state`` extra cannot round-trip through the codec.

    Raised at *encode* time, naming the executor and the offending key —
    the loud-failure half of the never-drop-state-silently contract for
    :meth:`~repro.vm.executors.BlockExecutor.on_snapshot_lane` hooks.
    """


# -- program fingerprint -------------------------------------------------------


def program_fingerprint(program: StackProgram) -> bytes:
    """SHA-256 digest of the program's canonical text (cached on the program).

    Hashes the structural identity a restore depends on: inputs, outputs,
    declared storage kinds, function entry points, and every block's ops
    and terminator in their canonical ``str`` forms (which spell out
    constants, primitive names, and jump targets as block indices).
    Block labels are cosmetic and excluded.
    """
    cached = getattr(program, "_fingerprint", None)
    if cached is not None:
        return cached
    lines: List[str] = [
        "inputs:" + ",".join(program.inputs),
        "outputs:" + ",".join(program.outputs),
        "kinds:" + ",".join(
            f"{name}={program.var_kinds[name].value}"
            for name in sorted(program.var_kinds)
        ),
        "entries:" + ",".join(
            f"{name}@{program.function_entries[name]}"
            for name in sorted(program.function_entries)
        ),
    ]
    for i, block in enumerate(program.blocks):
        lines.append(f"block {i}:")
        for op in block.ops:
            lines.append("  " + str(op))
        lines.append("  " + str(block.terminator))
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).digest()
    program._fingerprint = digest
    return digest


def _known_variables(program: StackProgram) -> frozenset:
    cached = getattr(program, "_snapshot_vars", None)
    if cached is None:
        cached = frozenset(program.variables())
        program._snapshot_vars = cached
    return cached


# -- encoding ------------------------------------------------------------------


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def _pack_array(array: np.ndarray) -> bytes:
    array = np.asarray(array)
    if array.dtype.hasobject:
        raise ExecutorStateError(
            f"cannot serialize an object-dtype array (dtype={array.dtype})"
        )
    # tobytes() copies in C order even for non-contiguous views, and —
    # unlike ascontiguousarray — never promotes 0-d register scalars to 1-D.
    raw = array.tobytes()
    parts = [
        _pack_str(array.dtype.str),
        struct.pack("<B", array.ndim),
        struct.pack(f"<{array.ndim}Q", *array.shape) if array.ndim else b"",
        struct.pack("<Q", len(raw)),
        raw,
    ]
    return b"".join(parts)


def encode_snapshot(snapshot: LaneSnapshot) -> bytes:
    """Serialize ``snapshot`` to the versioned wire format."""
    executor = getattr(snapshot, "executor", "") or ""
    parts = [
        MAGIC,
        struct.pack("<H", VERSION),
        program_fingerprint(snapshot.program),
        struct.pack("<q", int(snapshot.pc)),
        _pack_str(executor),
        _pack_array(np.asarray(snapshot.addr_frames)),
        struct.pack("<I", len(snapshot.storages)),
    ]
    for name in sorted(snapshot.storages):
        payload = snapshot.storages[name]
        parts.append(_pack_str(name))
        if payload is None:
            parts.append(b"\x00")
        else:
            parts.append(b"\x01")
            parts.append(_pack_array(np.asarray(payload)))
    parts.append(struct.pack("<I", len(snapshot.executor_state)))
    for key in sorted(snapshot.executor_state):
        value = snapshot.executor_state[key]
        parts.append(_pack_str(key))
        if isinstance(value, np.ndarray):
            try:
                record = _pack_array(value)
            except ExecutorStateError as error:
                raise ExecutorStateError(
                    f"executor {executor or '<unknown>'!r} stashed "
                    f"executor_state[{key!r}] as {error}; snapshots of this "
                    "lane cannot leave process memory until the hook stores "
                    "a plain-dtype array or a JSON-serializable value"
                ) from error
            parts.append(b"\x00" + record)
        else:
            try:
                text = json.dumps(value, sort_keys=True)
            except (TypeError, ValueError) as error:
                raise ExecutorStateError(
                    f"executor {executor or '<unknown>'!r} stashed "
                    f"executor_state[{key!r}] of type "
                    f"{type(value).__name__}, which the snapshot codec "
                    "cannot serialize; on_snapshot_lane must store ndarray "
                    "or JSON-serializable values for this lane to spill, "
                    "checkpoint, or migrate"
                ) from error
            parts.append(b"\x01" + _pack_str(text))
    body = b"".join(parts)
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


# -- decoding ------------------------------------------------------------------


class _Reader:
    """Sequential reader over snapshot bytes; every read is bounds-checked."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if n < 0 or end > len(self.data):
            raise SnapshotDecodeError(
                f"snapshot bytes truncated: wanted {n} bytes at offset "
                f"{self.pos}, only {len(self.data) - self.pos} remain"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def unpack(self, fmt: str) -> Tuple[Any, ...]:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def str_(self) -> str:
        (length,) = self.unpack("<I")
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as error:
            raise SnapshotDecodeError(
                f"snapshot bytes hold an invalid UTF-8 string: {error}"
            ) from error

    def array_header(self) -> Tuple[str, Tuple[int, ...], int, int]:
        """Parse one array record, *skipping* its payload.

        Returns ``(dtype_str, shape, payload_offset, payload_nbytes)`` so
        admission checks can run on shapes alone; materialization happens
        later via :meth:`materialize`.
        """
        dtype_str = self.str_()
        (ndim,) = self.unpack("<B")
        shape = self.unpack(f"<{ndim}Q") if ndim else ()
        (nbytes,) = self.unpack("<Q")
        offset = self.pos
        self.take(nbytes)  # bounds-check and skip
        return dtype_str, tuple(int(d) for d in shape), offset, int(nbytes)

    def materialize(
        self, header: Tuple[str, Tuple[int, ...], int, int]
    ) -> np.ndarray:
        dtype_str, shape, offset, nbytes = header
        try:
            dtype = np.dtype(dtype_str)
        except TypeError as error:
            raise SnapshotDecodeError(
                f"snapshot bytes name an unknown dtype {dtype_str!r}"
            ) from error
        count = 1
        for dim in shape:
            count *= dim
        if dtype.itemsize * count != nbytes:
            raise SnapshotDecodeError(
                f"snapshot array payload is {nbytes} bytes but dtype "
                f"{dtype_str} with shape {shape} needs "
                f"{dtype.itemsize * count}"
            )
        flat = np.frombuffer(self.data, dtype=dtype, count=count, offset=offset)
        return flat.reshape(shape).copy()


def decode_snapshot(
    data: bytes,
    program: StackProgram,
    *,
    facts: Any = None,
    max_stack_depth: Optional[int] = None,
) -> LaneSnapshot:
    """Decode ``data`` into a :class:`LaneSnapshot` bound to ``program``.

    Admission order (each rejection *before* any array is materialized):

    1. magic / version / CRC32 — :class:`SnapshotDecodeError`;
    2. program fingerprint — :class:`SnapshotProgramMismatchError`;
    3. pc range and storage-name validity — :class:`SnapshotDecodeError`;
    4. required depth (from array headers alone) vs ``max_stack_depth`` —
       :class:`~repro.vm.program_counter.SnapshotIncompatibleError`;
    5. required depth vs the verifier's proven bound via
       ``facts.check_snapshot_frames`` — ``ValueError`` (a forged-depth
       snapshot this program cannot have produced).

    Pass the machine's ``plan.facts`` and ``max_stack_depth`` to run the
    full static admission here; ``restore_lane`` re-checks both anyway, so
    skipping them only delays rejection, never weakens it.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SnapshotDecodeError(
            f"snapshot bytes must be a bytes-like object, got "
            f"{type(data).__name__}"
        )
    data = bytes(data)
    if len(data) < len(MAGIC) + 2 + 4:
        raise SnapshotDecodeError(
            f"snapshot bytes truncated: {len(data)} bytes is shorter than "
            "the fixed header and trailer"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise SnapshotDecodeError(
            "snapshot bytes lack the RPLS magic; this is not a serialized "
            "LaneSnapshot"
        )
    (version,) = struct.unpack_from("<H", data, len(MAGIC))
    if version != VERSION:
        raise SnapshotDecodeError(
            f"snapshot format version {version} is not supported "
            f"(this codec reads version {VERSION})"
        )
    (crc_stored,) = struct.unpack_from("<I", data, len(data) - 4)
    crc_actual = zlib.crc32(data[:-4]) & 0xFFFFFFFF
    if crc_stored != crc_actual:
        raise SnapshotDecodeError(
            f"snapshot bytes fail their integrity check (crc32 "
            f"{crc_actual:#010x} != stored {crc_stored:#010x}); the bytes "
            "were corrupted or truncated in storage or transport"
        )

    reader = _Reader(data[:-4])
    reader.take(len(MAGIC) + 2)
    fingerprint = reader.take(32)
    expected = program_fingerprint(program)
    if fingerprint != expected:
        raise SnapshotProgramMismatchError(
            "snapshot bytes were captured under a different program "
            f"(fingerprint {fingerprint.hex()[:12]}… != this program's "
            f"{expected.hex()[:12]}…); snapshots only restore into machines "
            "running the same StackProgram"
        )
    (pc,) = reader.unpack("<q")
    if not (0 <= pc <= program.exit_index):
        raise SnapshotDecodeError(
            f"snapshot pc {pc} is outside this program's pc range "
            f"[0, {program.exit_index}]"
        )
    executor = reader.str_()
    addr_header = reader.array_header()
    if len(addr_header[1]) != 1 or addr_header[1][0] < 1:
        raise SnapshotDecodeError(
            f"snapshot address-stack frames must be a 1-D array with at "
            f"least the base frame, got shape {addr_header[1]}"
        )

    known = _known_variables(program)
    (n_storages,) = reader.unpack("<I")
    storage_headers: List[Tuple[str, Optional[Tuple]]] = []
    seen_names: set = set()
    for _ in range(n_storages):
        name = reader.str_()
        if name not in known:
            raise SnapshotDecodeError(
                f"snapshot bytes name a storage {name!r} that is not a "
                "variable of this program"
            )
        if name in seen_names:
            raise SnapshotDecodeError(
                f"snapshot bytes list storage {name!r} twice"
            )
        seen_names.add(name)
        (tag,) = reader.unpack("<B")
        if tag == 0:
            storage_headers.append((name, None))
        elif tag == 1:
            storage_headers.append((name, reader.array_header()))
        else:
            raise SnapshotDecodeError(
                f"snapshot storage {name!r} carries unknown tag {tag}"
            )

    (n_extras,) = reader.unpack("<I")
    extra_headers: List[Tuple[str, int, Any]] = []
    seen_keys: set = set()
    for _ in range(n_extras):
        key = reader.str_()
        if key in seen_keys:
            raise SnapshotDecodeError(
                f"snapshot bytes list executor_state[{key!r}] twice"
            )
        seen_keys.add(key)
        (tag,) = reader.unpack("<B")
        if tag == 0:
            extra_headers.append((key, tag, reader.array_header()))
        elif tag == 1:
            extra_headers.append((key, tag, reader.str_()))
        else:
            raise SnapshotDecodeError(
                f"snapshot executor_state[{key!r}] carries unknown tag {tag}"
            )
    if reader.pos != len(reader.data):
        raise SnapshotDecodeError(
            f"snapshot bytes hold {len(reader.data) - reader.pos} trailing "
            "bytes past the last field"
        )

    # -- static admission, from headers alone (nothing materialized yet) ------
    required = addr_header[1][0] - 1
    for name, header in storage_headers:
        if header is not None and program.kind(name) is VarKind.STACKED:
            if not header[1]:
                raise SnapshotDecodeError(
                    f"snapshot stacked storage {name!r} must carry at least "
                    "a 1-D frames array, got a scalar"
                )
            required = max(required, header[1][0] - 1)
    if max_stack_depth is not None and required > max_stack_depth:
        raise SnapshotIncompatibleError(
            f"serialized lane snapshot at pc={pc} requires stack depth "
            f"{required} but the target machine has max_stack_depth="
            f"{max_stack_depth}; restore it into a machine with "
            f"max_stack_depth >= {required}"
        )
    if facts is not None:
        facts.check_snapshot_frames(
            required, max_stack_depth if max_stack_depth is not None else required
        )

    # -- admission passed: materialize ----------------------------------------
    addr_frames = reader.materialize(addr_header)
    storages: Dict[str, Optional[np.ndarray]] = {}
    for name, header in storage_headers:
        storages[name] = None if header is None else reader.materialize(header)
    executor_state: Dict[str, Any] = {}
    for key, tag, payload in extra_headers:
        if tag == 0:
            executor_state[key] = reader.materialize(payload)
        else:
            try:
                executor_state[key] = json.loads(payload)
            except ValueError as error:
                raise SnapshotDecodeError(
                    f"snapshot executor_state[{key!r}] holds invalid JSON: "
                    f"{error}"
                ) from error
    return LaneSnapshot(
        program=program,
        pc=int(pc),
        addr_frames=addr_frames,
        storages=storages,
        executor_state=executor_state,
        executor=executor,
    )
