"""Execution counters for both machines.

The key derived metric is **batch utilization** (paper Figure 6): the
fraction of executed primitive lane-slots that belonged to locally active
batch members.  Under masking, a primitive executed at batch size ``Z`` with
``a`` active members does ``Z`` lanes of work of which ``a`` are useful;
under gather-scatter, it does ``a`` lanes but the divergence still shows up
as extra machine steps.  We count *slots* (``Z`` per execution) and *active*
(``a``) per primitive name and per tag, so utilization can be reported for
any class of primitives — Figure 6 uses the target-density gradient.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


def elements_per_lane(value) -> int:
    """Per-member element count of a batched value (1 for scalars)."""
    v = np.asarray(value)
    if v.ndim == 0 or v.shape[0] == 0:
        return 1
    return int(v.size // v.shape[0])


@dataclass
class OpCounter:
    executions: int = 0
    slots: int = 0     # lanes the platform executed (Z per execution, masked)
    active: int = 0    # lanes that were locally active (useful work)
    flops: float = 0.0  # abstract work: cost_weight * elements/lane * slots

    def utilization(self) -> float:
        """Fraction of this counter's lane-slots that were active."""
        return self.active / self.slots if self.slots else 1.0


@dataclass(slots=True)
class BlockCounter:
    """Per-basic-block lane accounting (profiling only, off by default).

    ``slots - active`` is the block's masked-lane waste — the per-block
    signal superblock fusion ranks stragglers by.  ``live`` records how
    many lanes were live anywhere in the machine at those steps, which
    separates "the batch is drained" from "the batch diverged away from
    this block".  Slotted: it is updated once per machine step when
    profiling is armed.
    """

    executions: int = 0
    active: int = 0    # lanes whose pc sat at this block (useful work)
    live: int = 0      # lanes live anywhere in the machine at those steps
    slots: int = 0     # lane-slots the platform offered (Z per execution)

    def waste(self) -> int:
        """Offered lane-slots that did no useful work at this block."""
        return self.slots - self.active

    def occupancy(self) -> float:
        """Fraction of offered slots active at this block."""
        return self.active / self.slots if self.slots else 1.0


@dataclass
class Instrumentation:
    """Mutable counters, shared across nested interpreter activations."""

    batch_size: int = 0
    steps: int = 0                      # basic-block executions
    host_dispatches: int = 0            # machine dispatches (step_lanes calls)
    kernel_calls: int = 0               # primitive dispatches
    pushes: int = 0                     # stack frames pushed (all variables)
    pops: int = 0
    push_lanes: int = 0                 # per-lane stack traffic
    pop_lanes: int = 0
    stacked_reads: int = 0              # reads hitting a stack-backed variable
    stacked_writes: int = 0             # writes scattering into a stack array
    register_writes: int = 0            # masked updates of stack-free variables
    lane_slots: int = 0                 # machine lanes offered (Z per step)
    lane_live: int = 0                  # lanes holding a live (unhalted) member
    by_prim: Dict[str, OpCounter] = field(default_factory=lambda: defaultdict(OpCounter))
    by_tag: Dict[str, OpCounter] = field(default_factory=lambda: defaultdict(OpCounter))
    track_blocks: bool = False          # arm per-block profiling (O(Z) scan/step)
    by_block: Dict[int, BlockCounter] = field(default_factory=dict)

    def record_step(self) -> None:
        """Count one basic-block execution."""
        self.steps += 1

    def record_dispatch(self) -> None:
        """Count one host dispatch (one ``step_lanes`` call).

        For the eager and fused executors every dispatch executes exactly
        one basic block, so ``host_dispatches == steps``.  A superblock
        executor runs several blocks per dispatch, pushing
        ``host_dispatches / steps`` strictly below one — the amortization
        the superblock benchmark asserts on.
        """
        self.host_dispatches += 1

    def record_occupancy(self, live: int, slots: int) -> None:
        """Count one machine step's lane occupancy.

        Every step the machine offers ``slots`` SIMD lanes (the batch width
        ``Z`` under masking) of which ``live`` hold a member whose program
        counter has not reached the exit.  The ratio is *lane utilization*
        — the serving-level analog of per-primitive batch utilization, and
        the quantity continuous batching exists to keep high: a drained
        machine ends its run with mostly-dead lanes, a recycled one refills
        them mid-flight.
        """
        self.lane_slots += slots
        self.lane_live += live

    def record_block(self, index: int, active: int, live: int, slots: int) -> None:
        """Count one basic-block execution's lane accounting (profiling).

        Only called when ``track_blocks`` is set; ``slots`` mirrors the
        primitive-level convention (batch width under masking, the
        gathered index size under gather-scatter).
        """
        counter = self.by_block.get(index)
        if counter is None:
            counter = self.by_block[index] = BlockCounter()
        counter.executions += 1
        counter.active += active
        counter.live += live
        counter.slots += slots

    def record_prim(
        self,
        name: str,
        tags,
        active: int,
        slots: int,
        elements: int = 1,
        weight: float = 1.0,
    ) -> None:
        """Count one primitive dispatch with its lane accounting."""
        self.kernel_calls += 1
        flops = weight * elements * slots
        counter = self.by_prim[name]
        counter.executions += 1
        counter.slots += slots
        counter.active += active
        counter.flops += flops
        for tag in tags:
            t = self.by_tag[tag]
            t.executions += 1
            t.slots += slots
            t.active += active
            t.flops += flops

    def record_push(self, lanes: int) -> None:
        """Count one stack push touching ``lanes`` members."""
        self.pushes += 1
        self.push_lanes += lanes

    def record_pop(self, lanes: int) -> None:
        """Count one stack pop touching ``lanes`` members."""
        self.pops += 1
        self.pop_lanes += lanes

    def record_storage(self, kind, is_write: bool) -> None:
        """Count one variable access by storage class (ablation C metric)."""
        name = getattr(kind, "name", str(kind))
        if name == "STACKED":
            if is_write:
                self.stacked_writes += 1
            else:
                self.stacked_reads += 1
        elif is_write:
            self.register_writes += 1

    # -- derived metrics ---------------------------------------------------

    def lane_utilization(self) -> float:
        """Fraction of offered machine lane-slots that held live members."""
        return self.lane_live / self.lane_slots if self.lane_slots else 1.0

    def utilization(self, tag: Optional[str] = None, prim: Optional[str] = None) -> float:
        """Fraction of executed lane-slots that were active.

        With ``tag`` or ``prim``, restrict to that class of primitives
        (Figure 6 uses ``tag="gradient"``).
        """
        if tag is not None:
            return self.by_tag[tag].utilization()
        if prim is not None:
            return self.by_prim[prim].utilization()
        slots = sum(c.slots for c in self.by_prim.values())
        active = sum(c.active for c in self.by_prim.values())
        return active / slots if slots else 1.0

    def count(self, tag: Optional[str] = None, prim: Optional[str] = None) -> OpCounter:
        """The raw :class:`OpCounter` for a tag or primitive."""
        if tag is not None:
            return self.by_tag[tag]
        if prim is not None:
            return self.by_prim[prim]
        raise ValueError("specify tag= or prim=")

    def summary(self) -> str:
        """Human-readable multi-line counter summary."""
        lines = [
            f"steps={self.steps} kernel_calls={self.kernel_calls} "
            f"pushes={self.pushes} pops={self.pops} "
            f"overall_utilization={self.utilization():.3f} "
            f"lane_utilization={self.lane_utilization():.3f}"
        ]
        for tag in sorted(self.by_tag):
            c = self.by_tag[tag]
            lines.append(
                f"  tag {tag}: execs={c.executions} active={c.active} "
                f"slots={c.slots} util={c.utilization():.3f}"
            )
        return "\n".join(lines)
