"""The whole callable-IR -> stack-IR compilation pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.analysis.liveness import definitely_assigned_check
from repro.analysis.storage import assign_storage
from repro.ir.instructions import (
    Block,
    Branch,
    Jump,
    Program,
    PushJump,
    Return,
    StackProgram,
    VarKind,
)
from repro.ir.validate import validate_program, validate_stack_program
from repro.lowering.lower_calls import lower_calls
from repro.lowering.pop_push import eliminate_pop_push
from repro.lowering.rename import rename_program


class LoweringError(ValueError):
    """Raised when a program cannot be lowered to the stack dialect."""


@dataclass(frozen=True)
class LoweringOptions:
    """Per-optimization toggles (paper Section 3), for the ablation benches.

    Optimization 1 (per-variable caller-saves stacks) is structural and
    always on; optimization 4 (top-of-stack caching) is a runtime choice on
    the program-counter machine (``top_cache=...``).
    """

    temp_opt: bool = True       # optimization 2: block-local temporaries
    register_opt: bool = True   # optimization 3: stack-free variables
    pop_push_opt: bool = True   # optimization 5: Pop;Push -> Update

    @classmethod
    def none(cls) -> "LoweringOptions":
        """All optimizations disabled (the ablation baseline)."""
        return cls(temp_opt=False, register_opt=False, pop_push_opt=False)


def normalize_lowering_options(
    optimize: Union[bool, LoweringOptions]
) -> LoweringOptions:
    """Coerce the public ``optimize`` argument to a :class:`LoweringOptions`.

    ``True``/``False`` keep their historical meaning (all optimizations
    on/off); a :class:`LoweringOptions` instance passes through, so ablation
    benches can toggle individual optimizations via the public API.
    """
    if isinstance(optimize, LoweringOptions):
        return optimize
    return LoweringOptions() if optimize else LoweringOptions.none()


def lower_program(
    program: Program,
    optimize: Union[bool, LoweringOptions] = True,
) -> StackProgram:
    """Compile a callable-IR program to a flat stack-dialect program."""
    opts = normalize_lowering_options(optimize)

    validate_program(program)
    problems: List[str] = []
    for fn in program.functions.values():
        problems += definitely_assigned_check(fn)
    if problems:
        raise LoweringError(
            "program has possibly-unassigned variable uses:\n  "
            + "\n  ".join(problems)
        )

    renamed = rename_program(program)
    storage = assign_storage(
        renamed, temp_opt=opts.temp_opt, register_opt=opts.register_opt
    )
    lowered = lower_calls(renamed, storage)

    # Merge: main's blocks first (entry must be block 0), then callees in
    # program order.
    ordered_fns = [renamed.main] + [
        name for name in renamed.functions if name != renamed.main
    ]
    blocks: List[Block] = []
    block_sources: List[str] = []
    for name in ordered_fns:
        for blk in lowered.blocks_by_fn[name]:
            blocks.append(blk)
            block_sources.append(name)

    if opts.pop_push_opt:
        blocks, _ = eliminate_pop_push(blocks)

    index: Dict[str, int] = {}
    for i, blk in enumerate(blocks):
        if blk.label in index:
            raise LoweringError(f"duplicate block label after merge: {blk.label!r}")
        index[blk.label] = i

    def resolve(label: str) -> int:
        try:
            return index[label]
        except KeyError:
            raise LoweringError(f"unresolved block label {label!r}")

    for blk in blocks:
        term = blk.terminator
        if isinstance(term, Jump):
            blk.terminator = Jump(target=resolve(term.target))
        elif isinstance(term, Branch):
            blk.terminator = Branch(
                cond=term.cond,
                true_target=resolve(term.true_target),
                false_target=resolve(term.false_target),
            )
        elif isinstance(term, PushJump):
            blk.terminator = PushJump(
                return_target=resolve(term.return_target),
                jump_target=resolve(term.jump_target),
            )
        elif isinstance(term, Return):
            pass
        else:
            raise LoweringError(f"unexpected terminator {term!r}")

    var_kinds: Dict[str, VarKind] = dict(storage.kinds)
    var_kinds.update(lowered.extra_kinds)

    var_types = {}
    for fn in renamed.functions.values():
        var_types.update(fn.var_types)

    main_fn = renamed.main_function
    stack_program = StackProgram(
        blocks=blocks,
        inputs=main_fn.params,
        outputs=main_fn.outputs,
        var_kinds=var_kinds,
        var_types=var_types,
        function_entries={
            name: index[lowered.entry_labels[name]] for name in ordered_fns
        },
        block_sources=block_sources,
    )
    validate_stack_program(stack_program)
    return stack_program
