"""Compilation from the callable IR (Figure 2) to the stack IR (Figure 4).

The pipeline mirrors the paper's description: "our implementation compiles to
the [callable language] first and then lowers from there to the [stack
language]".  Passes:

1. :mod:`repro.lowering.rename` — alpha-rename every function's variables
   and labels apart, so the merged flat program has one global namespace.
2. :mod:`repro.analysis.storage` — liveness, save sets, storage classes.
3. :mod:`repro.lowering.lower_calls` — replace every ``CallOp`` with the
   caller-saves push/pop protocol plus ``PushJump``/``Return`` control.
4. :mod:`repro.lowering.pop_push` — cancel Pop-then-Push pairs into in-place
   updates (paper optimization 5).
"""

from repro.lowering.pipeline import LoweringError, LoweringOptions, lower_program

__all__ = ["LoweringError", "LoweringOptions", "lower_program"]
