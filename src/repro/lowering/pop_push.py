"""Pop-then-Push cancellation (paper Section 3, optimization 5).

A ``Pop v`` followed by ``Push v = f(xs)`` with no intervening access to
``v`` (no read — including by the push's own inputs — and no write) leaves
the value the pop exposed untouched and unobserved; the pair is equivalent to
the in-place ``Update v = f(xs)``, which only touches the cached stack top.

The pass works within basic blocks and along *straight-line chains* of
blocks: ``A -> B`` is chained when ``A`` ends in ``Jump B`` and no other
terminator in the whole program targets ``B`` (so control can only enter
``B`` from ``A``).  This catches the common case of consecutive call sites
sharing saved variables or argument frames; pairs split across genuinely
merging control flow (e.g. around a loop header) are left alone, which is
sound but conservative.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Block, ConstOp, Jump, PopOp, PrimOp, PushOp


def _build_chains(blocks: List[Block]) -> List[List[Block]]:
    """Group blocks into straight-line chains safe to scan as one sequence."""
    by_label = {b.label: b for b in blocks}
    target_counts: Dict[str, int] = {}
    jump_only_target: Dict[str, Optional[str]] = {}
    for b in blocks:
        term = b.terminator
        for t in (term.targets() if term is not None else ()):
            if isinstance(t, str):
                target_counts[t] = target_counts.get(t, 0) + 1
        jump_only_target[b.label] = (
            term.target if isinstance(term, Jump) and isinstance(term.target, str) else None
        )

    chained_into: Dict[str, str] = {}  # successor label -> predecessor label
    for b in blocks:
        succ = jump_only_target[b.label]
        if (
            succ is not None
            and succ in by_label
            and succ != b.label
            and target_counts.get(succ, 0) == 1
        ):
            chained_into[succ] = b.label

    chains: List[List[Block]] = []
    for b in blocks:
        if b.label in chained_into:
            continue  # not a chain head
        chain = [b]
        while True:
            succ = jump_only_target[chain[-1].label]
            if succ is not None and chained_into.get(succ) == chain[-1].label:
                chain.append(by_label[succ])
            else:
                break
        chains.append(chain)
    return chains


def eliminate_pop_push(blocks: List[Block]) -> Tuple[List[Block], int]:
    """Cancel Pop/Push pairs in place; returns (blocks, number of pairs removed)."""
    eliminated = 0
    for chain in _build_chains(blocks):
        # pending[var] = (block, index-in-ops) of a cancellable PopOp.
        pending: Dict[str, Tuple[Block, int]] = {}
        to_remove: List[Tuple[Block, int]] = []
        for blk in chain:
            for i, op in enumerate(blk.ops):
                if isinstance(op, PopOp):
                    # Any prior pending pop of the same var stays (only the
                    # most recent pop can pair with a later push).
                    pending[op.var] = (blk, i)
                    continue
                if isinstance(op, PushOp):
                    for v in op.inputs:  # reads invalidate
                        pending.pop(v, None)
                    if op.output in pending:
                        to_remove.append(pending.pop(op.output))
                        blk.ops[i] = PrimOp(
                            outputs=(op.output,), fn=op.fn, inputs=op.inputs
                        )
                        eliminated += 1
                    else:
                        pending.pop(op.output, None)
                    continue
                if isinstance(op, (PrimOp, ConstOp)):
                    for v in op.inputs:
                        pending.pop(v, None)
                    for v in op.outputs:
                        pending.pop(v, None)
                    continue
                # Unknown op: be conservative.
                pending.clear()
            term = blk.terminator
            if term is not None and hasattr(term, "cond"):
                pending.pop(term.cond, None)
        for blk, i in to_remove:
            blk.ops[i] = None  # type: ignore[call-overload]
        for blk in chain:
            blk.ops = [op for op in blk.ops if op is not None]
    return blocks, eliminated
