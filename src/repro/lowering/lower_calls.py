"""Caller-saves call lowering: ``CallOp`` -> explicit stack manipulation.

For each call site ``outs = G(actuals)`` inside function ``F`` the pass emits,
in order (paper Section 3, optimization 1):

1. *Argument staging* — copy actuals into block-local temporaries, but only
   when some actual is itself a formal of ``G`` (otherwise the pushes below
   could observe partially-bound formals; think ``fib(b, a)`` with formals
   ``(a, b)``).
2. *Caller saves* — ``Push v = id(v)`` for every variable in the call site's
   save set: live after the call and clobbered by the transitive callee.
   These sets are empty for non-recursive programs.
3. *Formal binding* — for a recursive callee, ``Push formal = id(actual)``
   (a fresh argument frame per activation, which simultaneously protects the
   caller's own binding under recursion); for a non-recursive callee, a plain
   masked update (no stack traffic — half of the paper's claim that
   non-recursive programs run without variable stacks).
4. ``PushJump ret_label entry(G)``.

The *return block* at ``ret_label`` then pops the formal frames and the
saves, moves ``G``'s output variables into ``outs``, and resumes the rest of
the original block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.storage import StorageAssignment
from repro.ir.instructions import (
    Block,
    CallOp,
    PopOp,
    PrimOp,
    Program,
    PushJump,
    PushOp,
    VarKind,
)


@dataclass
class LoweredFunctions:
    """Blocks per function (labels still symbolic) plus new variable kinds."""

    blocks_by_fn: Dict[str, List[Block]]
    extra_kinds: Dict[str, VarKind] = field(default_factory=dict)
    entry_labels: Dict[str, str] = field(default_factory=dict)


def lower_calls(program: Program, storage: StorageAssignment) -> LoweredFunctions:
    recursive = storage.call_graph.recursive
    result = LoweredFunctions(blocks_by_fn={}, extra_kinds={}, entry_labels={})
    for fn in program.functions.values():
        result.entry_labels[fn.name] = fn.blocks[0].label
        out_blocks: List[Block] = []
        site = 0
        for blk in fn.blocks:
            current = Block(label=blk.label, ops=[], terminator=None)
            remaining: List = list(blk.ops)
            idx = 0
            while remaining:
                op = remaining.pop(0)
                if not isinstance(op, CallOp):
                    current.ops.append(op)
                    idx += 1
                    continue
                callee = program.functions[op.func]
                callee_recursive = op.func in recursive
                saves = sorted(
                    storage.save_sets.get((fn.name, blk.label, idx), frozenset())
                )

                actuals: Tuple[str, ...] = op.inputs
                needs_staging = bool(set(actuals) & set(callee.params))
                if needs_staging:
                    staged = []
                    for j, actual in enumerate(actuals):
                        tmp = f"{fn.name}.__args{site}_{j}"
                        result.extra_kinds[tmp] = VarKind.TEMP
                        current.ops.append(PrimOp(outputs=(tmp,), fn="id", inputs=(actual,)))
                        staged.append(tmp)
                    actuals = tuple(staged)

                for v in saves:
                    current.ops.append(PushOp(output=v, fn="id", inputs=(v,)))

                for formal, actual in zip(callee.params, actuals):
                    if callee_recursive:
                        current.ops.append(PushOp(output=formal, fn="id", inputs=(actual,)))
                    else:
                        current.ops.append(PrimOp(outputs=(formal,), fn="id", inputs=(actual,)))

                ret_label = f"{blk.label}.ret{site}"
                site += 1
                current.terminator = PushJump(
                    return_target=ret_label,
                    jump_target=callee.blocks[0].label,
                )
                out_blocks.append(current)

                # Return block: unwind frames, then move results.
                current = Block(label=ret_label, ops=[], terminator=None)
                if callee_recursive:
                    for formal in callee.params:
                        current.ops.append(PopOp(var=formal))
                for v in reversed(saves):
                    current.ops.append(PopOp(var=v))
                for out, ret in zip(op.outputs, callee.outputs):
                    current.ops.append(PrimOp(outputs=(out,), fn="id", inputs=(ret,)))
                idx += 1
            current.terminator = blk.terminator
            out_blocks.append(current)
        result.blocks_by_fn[fn.name] = out_blocks
    return result
