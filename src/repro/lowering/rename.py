"""Alpha-renaming: give every function a disjoint variable and label namespace.

After renaming, variable ``n`` of function ``fib`` is ``fib.n`` and block
``entry`` is ``fib.entry``.  The merged stack program can then keep all
variables in one flat environment, and the storage analyses can reason about
cross-function clobbering purely by name.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.instructions import (
    Block,
    Branch,
    CallOp,
    ConstOp,
    Function,
    Jump,
    PrimOp,
    Program,
    Return,
)


def qualified(fn_name: str, name: str) -> str:
    """The alpha-renamed form ``fn.var`` of a local variable."""
    return f"{fn_name}.{name}"


def rename_function(fn: Function) -> Function:
    """Qualify every local of one function with its function name."""
    def rv(v: str) -> str:
        return qualified(fn.name, v)

    def rl(label: str) -> str:
        return qualified(fn.name, label)

    blocks = []
    for blk in fn.blocks:
        ops = []
        for op in blk.ops:
            if isinstance(op, ConstOp):
                ops.append(ConstOp(output=rv(op.output), value=op.value))
            elif isinstance(op, PrimOp):
                ops.append(
                    PrimOp(
                        outputs=tuple(rv(v) for v in op.outputs),
                        fn=op.fn,
                        inputs=tuple(rv(v) for v in op.inputs),
                    )
                )
            elif isinstance(op, CallOp):
                ops.append(
                    CallOp(
                        outputs=tuple(rv(v) for v in op.outputs),
                        func=op.func,  # function names are already global
                        inputs=tuple(rv(v) for v in op.inputs),
                    )
                )
            else:
                raise TypeError(f"unexpected op in callable IR: {op!r}")
        term = blk.terminator
        if isinstance(term, Jump):
            term = Jump(target=rl(term.target))
        elif isinstance(term, Branch):
            term = Branch(
                cond=rv(term.cond),
                true_target=rl(term.true_target),
                false_target=rl(term.false_target),
            )
        elif isinstance(term, Return):
            pass
        else:
            raise TypeError(f"unexpected terminator in callable IR: {term!r}")
        blocks.append(Block(label=rl(blk.label), ops=ops, terminator=term))

    return Function(
        name=fn.name,
        params=tuple(rv(p) for p in fn.params),
        outputs=tuple(rv(o) for o in fn.outputs),
        blocks=blocks,
        var_types={rv(v): t for v, t in fn.var_types.items()},
    )


def rename_program(program: Program) -> Program:
    """Alpha-rename all functions so the merged program has no clashes."""
    functions: Dict[str, Function] = {
        name: rename_function(fn) for name, fn in program.functions.items()
    }
    return Program(functions=functions, main=program.main)
