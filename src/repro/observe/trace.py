"""Per-request event tracing on the logical clock.

Every scheduling decision the serving stack makes about a request —
admission, injection into a lane, preemption, cross-shard migration,
completion — is recorded as a :class:`TraceEvent` stamped with the
*logical* tick at which it happened.  Because the clock is logical and
the engine/cluster loops are deterministic, two identical runs produce
identical event streams, byte for byte, which makes traces diffable and
replayable in a way wall-clock traces never are.

Three consumers are supported:

* ``ResultHandle.trace()`` — one request's causal timeline (the answer
  to "what happened to request 4217?").
* :meth:`Tracer.export_chrome_trace` — the whole run in Chrome trace
  event format, openable in ``chrome://tracing`` or Perfetto.
* :func:`validate_timeline` — a state machine asserting each timeline is
  well-formed (submit first, exactly one terminal event, evictions and
  resumes balanced); the property tests drive every generated schedule
  through it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

#: Every event kind the serving stack can emit, in no particular order.
#: ``reject`` never carries a request id (the handle is refused before one
#: is associated with the trace); every other kind does.
EVENT_KINDS = (
    "submit",    # request entered a queue (engine or cluster admission)
    "arrive",    # request crossed the async front door (wall-clock arrival)
    "reject",    # request refused at admission (bounded queue full)
    "inject",    # request seated into a machine lane
    "preempt",   # running request evicted to a snapshot
    "resume",    # evicted request restored into a lane
    "steal",     # queued/evicted request moved to another shard's queue
    "migrate",   # evicted request's snapshot carried across shards
    "drain",     # request re-seated off a draining shard
    "deadline",  # request finished past its deadline (precedes terminal)
    "complete",  # terminal: result resolved
    "fail",      # terminal: budget exceeded / trap / failed restore
)

_TERMINAL = ("complete", "fail")


@dataclass(frozen=True)
class TraceEvent:
    """One scheduling decision, stamped with the logical tick.

    ``src`` is the *source* shard for cross-shard events (``steal``,
    ``migrate``, ``drain``); ``shard`` is always where the request ended
    up.  Lane ids are only meaningful for events that touch a lane
    (``inject``, ``preempt``, ``resume``, ``complete``, ``fail``).
    """

    tick: int
    kind: str
    request_id: Optional[int] = None
    shard: Optional[int] = None
    lane: Optional[int] = None
    priority: Optional[int] = None
    src: Optional[int] = None

    def as_dict(self) -> Dict[str, Union[int, str]]:
        """Compact dict form: ``None`` fields are omitted."""
        out: Dict[str, Union[int, str]] = {"tick": self.tick, "kind": self.kind}
        for key in ("request_id", "shard", "lane", "priority", "src"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


class Tracer:
    """Ordered, indexed recorder of serving events.

    Events are appended in the order the engine/cluster loops emit them,
    which — on the logical clock — is itself deterministic.  An index by
    request id supports per-handle timelines without scanning.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._by_request: Dict[int, List[TraceEvent]] = {}
        self._counts: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.events)

    def record(
        self,
        kind: str,
        tick: int,
        request_id: Optional[int] = None,
        shard: Optional[int] = None,
        lane: Optional[int] = None,
        priority: Optional[int] = None,
        src: Optional[int] = None,
    ) -> TraceEvent:
        """Append one event; returns it (mostly for tests)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        event = TraceEvent(
            tick=int(tick),
            kind=kind,
            request_id=request_id,
            shard=shard,
            lane=lane,
            priority=priority,
            src=src,
        )
        self.events.append(event)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if request_id is not None:
            self._by_request.setdefault(request_id, []).append(event)
        return event

    def events_for(self, request_id: int) -> List[TraceEvent]:
        """One request's causal timeline, in emission order."""
        return list(self._by_request.get(request_id, ()))

    def request_ids(self) -> List[int]:
        """Every request id that produced at least one event, sorted."""
        return sorted(self._by_request)

    def count(self, kind: str) -> int:
        """How many events of ``kind`` were recorded."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        return self._counts.get(kind, 0)

    def counts(self) -> Dict[str, int]:
        """Event counts by kind (only kinds that occurred), sorted keys."""
        return {k: self._counts[k] for k in sorted(self._counts)}

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dict of the raw event stream."""
        return {
            "counts": self.counts(),
            "events": [e.as_dict() for e in self.events],
        }

    # -- Chrome trace export ----------------------------------------------

    def chrome_trace(self) -> Dict[str, object]:
        """The run in Chrome trace event format (logical ticks as ``ts``).

        Three layers are derived from the raw stream:

        * an instant event (``ph="i"``) per raw event, so every decision
          is visible on the timeline;
        * a complete span (``ph="X"``) per lane-residency interval —
          opened at ``inject``/``resume``, closed at the next
          ``preempt``/``complete``/``fail`` — showing how long each
          request actually held a lane;
        * an async begin/end pair (``ph="b"``/``"e"``, ``id`` = request
          id) spanning submit → terminal, showing end-to-end latency.

        ``pid`` is the shard (0 for a single engine), ``tid`` the lane.
        """
        trace_events: List[Dict[str, object]] = []
        open_runs: Dict[int, TraceEvent] = {}
        for event in self.events:
            pid = 0 if event.shard is None else event.shard
            tid = 0 if event.lane is None else event.lane
            args: Dict[str, int] = {}
            if event.request_id is not None:
                args["request_id"] = event.request_id
            if event.priority is not None:
                args["priority"] = event.priority
            if event.src is not None:
                args["src_shard"] = event.src
            trace_events.append(
                {
                    "name": event.kind,
                    "cat": "serve",
                    "ph": "i",
                    "s": "p",
                    "ts": event.tick,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            rid = event.request_id
            if rid is None:
                continue
            if event.kind == "submit":
                trace_events.append(
                    {
                        "name": f"request {rid}",
                        "cat": "request",
                        "ph": "b",
                        "id": rid,
                        "ts": event.tick,
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
            elif event.kind in ("inject", "resume"):
                open_runs[rid] = event
            elif event.kind in ("preempt",) + _TERMINAL:
                start = open_runs.pop(rid, None)
                if start is not None:
                    trace_events.append(
                        {
                            "name": f"run {rid}",
                            "cat": "lane",
                            "ph": "X",
                            "ts": start.tick,
                            "dur": max(event.tick - start.tick, 0),
                            "pid": 0 if start.shard is None else start.shard,
                            "tid": 0 if start.lane is None else start.lane,
                            "args": {"request_id": rid, "ended_by": event.kind},
                        }
                    )
                if event.kind in _TERMINAL:
                    trace_events.append(
                        {
                            "name": f"request {rid}",
                            "cat": "request",
                            "ph": "e",
                            "id": rid,
                            "ts": event.tick,
                            "pid": pid,
                            "tid": tid,
                            "args": {"outcome": event.kind},
                        }
                    )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "logical ticks"},
        }

    def export_chrome_trace(self, path: Union[str, "os.PathLike[str]"]) -> Dict[str, object]:
        """Write :meth:`chrome_trace` to ``path``; returns the document.

        Serialization is canonical (sorted keys, fixed separators) so two
        identical runs produce byte-identical files.
        """
        doc = self.chrome_trace()
        with open(path, "w") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        return doc


def validate_chrome_trace(doc: Union[Dict[str, object], str, "os.PathLike[str]"]) -> int:
    """Check a document against the Chrome trace event schema.

    Accepts the dict itself or a path to a JSON file.  Verifies the
    ``traceEvents`` envelope and, per event, ``name``/``ph``/``ts``
    (plus ``dur`` on complete spans and ``id`` on async events).
    Returns the number of events; raises ``ValueError`` on violation.
    """
    if not isinstance(doc, dict):
        with open(doc) as fh:
            doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("chrome trace must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{i}] missing {key!r}")
        if not isinstance(event["name"], str) or not isinstance(event["ph"], str):
            raise ValueError(f"traceEvents[{i}] name/ph must be strings")
        if event["ph"] not in ("B", "E", "X", "i", "I", "b", "e", "n", "C", "M"):
            raise ValueError(f"traceEvents[{i}] has unknown phase {event['ph']!r}")
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"traceEvents[{i}] ts must be numeric")
        if event["ph"] == "X":
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                raise ValueError(f"traceEvents[{i}] complete span needs dur >= 0")
        if event["ph"] in ("b", "e", "n") and "id" not in event:
            raise ValueError(f"traceEvents[{i}] async event needs an id")
    return len(events)


def validate_timeline(events: Sequence[TraceEvent]) -> str:
    """Assert one request's timeline is well-formed; return its terminal.

    The contract checked (and relied on by the property tests):

    * the first event is ``submit`` and ticks never decrease;
    * exactly one terminal event (``complete`` or ``fail``), last;
    * lane residency alternates correctly: ``inject`` only from the
      queue, ``preempt`` only while running, ``resume`` only while
      evicted, so evictions and resumes are balanced on the ``complete``
      path (a ``fail`` may strand one eviction — a failed restore);
    * cross-shard moves only happen off-lane: ``steal``/``drain`` while
      queued or evicted, ``migrate`` only while evicted (it is the
      snapshot that migrates);
    * ``arrive`` (the async front door logging a wall-clock arrival)
      only while queued — it trails the ``submit`` at the same tick;
      ``deadline`` (an SLO miss marker) only while running, immediately
      before the terminal event.

    Raises ``ValueError`` with a pinpointed message on any violation.
    """
    if not events:
        raise ValueError("empty timeline")
    first = events[0]
    if first.kind != "submit":
        raise ValueError(f"timeline starts with {first.kind!r}, not submit")
    rid = first.request_id
    state = "queued"
    last_tick = first.tick
    preempts = resumes = 0
    terminal: Optional[str] = None
    for event in events[1:]:
        if event.request_id != rid:
            raise ValueError(f"foreign event for request {event.request_id} in {rid}'s timeline")
        if event.tick < last_tick:
            raise ValueError(f"time went backwards at {event.kind} (tick {event.tick} < {last_tick})")
        last_tick = event.tick
        if terminal is not None:
            raise ValueError(f"{event.kind} after terminal {terminal}")
        kind = event.kind
        if kind == "inject":
            if state != "queued":
                raise ValueError(f"inject while {state}")
            state = "running"
        elif kind == "preempt":
            if state != "running":
                raise ValueError(f"preempt while {state}")
            state = "evicted"
            preempts += 1
        elif kind == "resume":
            if state != "evicted":
                raise ValueError(f"resume while {state}")
            state = "running"
            resumes += 1
        elif kind in ("steal", "drain"):
            if state not in ("queued", "evicted"):
                raise ValueError(f"{kind} while {state}")
        elif kind == "migrate":
            if state != "evicted":
                raise ValueError(f"migrate while {state}")
        elif kind == "arrive":
            if state != "queued":
                raise ValueError(f"arrive while {state}")
        elif kind == "deadline":
            if state != "running":
                raise ValueError(f"deadline while {state}")
        elif kind == "complete":
            if state != "running":
                raise ValueError(f"complete while {state}")
            terminal = kind
        elif kind == "fail":
            if state not in ("running", "evicted"):
                raise ValueError(f"fail while {state}")
            terminal = kind
        elif kind == "submit":
            raise ValueError("duplicate submit")
        else:
            raise ValueError(f"unknown event kind {kind!r}")
    if terminal is None:
        raise ValueError("timeline has no terminal event")
    if terminal == "complete" and preempts != resumes:
        raise ValueError(f"unbalanced evictions: {preempts} preempts vs {resumes} resumes")
    if resumes > preempts:
        raise ValueError(f"{resumes} resumes exceed {preempts} preempts")
    return terminal
