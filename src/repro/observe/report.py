"""The :class:`Trace` hub: one handle over events, metrics, and profiles.

``Engine(trace=...)``, ``Cluster(trace=...)`` and ``fn.serve(...,
trace=...)`` all accept:

* ``None`` / ``False`` — observability fully off (the default; the hot
  paths pay a single ``is None`` check);
* ``True`` — a fresh :class:`Trace` with everything enabled;
* ``"events"`` / ``"metrics"`` / ``"profile"`` — just that piece;
* a :class:`Trace` instance — use it as-is.  A cluster passes its one
  resolved instance to every shard it spawns (including shards grown
  later), so the fleet shares a single event stream, metric recorder,
  and merged block profile.  This is deliberately unlike per-shard
  policies such as ``preempt``, which are deep-copied per engine —
  observability wants the global view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.observe.metrics import MetricsRecorder
from repro.observe.profile import BlockProfile
from repro.observe.trace import Tracer


class Trace:
    """Observability configuration plus its accumulated state.

    Any of the three pieces can be switched off independently:
    ``tracer`` and ``metrics`` are ``None`` when disabled, ``profile``
    is a plain flag the engine uses to arm per-block counters on its VM.
    """

    def __init__(
        self,
        events: bool = True,
        metrics: bool = True,
        profile: bool = True,
        metrics_window: int = 4096,
    ) -> None:
        self.tracer: Optional[Tracer] = Tracer() if events else None
        self.metrics: Optional[MetricsRecorder] = (
            MetricsRecorder(window=metrics_window) if metrics else None
        )
        self.profile = bool(profile)
        self._engines: List[object] = []

    # -- wiring -----------------------------------------------------------

    def attach_engine(self, engine: object) -> None:
        """Register an engine whose VM contributes to the block profile."""
        self._engines.append(engine)

    # -- reports ----------------------------------------------------------

    def block_profile(self) -> Optional[BlockProfile]:
        """Merged per-block profile across attached engines (None if off)."""
        if not self.profile:
            return None
        return BlockProfile.collect(
            (engine.vm.program, engine.vm.instr) for engine in self._engines
        )

    def export_chrome_trace(self, path) -> Dict[str, object]:
        """Write the event stream as Chrome trace JSON (requires events)."""
        if self.tracer is None:
            raise ValueError("event tracing is disabled on this Trace")
        return self.tracer.export_chrome_trace(path)

    def to_json(self) -> Dict[str, object]:
        """Canonical JSON-ready dict spanning events, metrics, profile."""
        profile = self.block_profile()
        return {
            "events": None if self.tracer is None else self.tracer.to_json(),
            "metrics": None if self.metrics is None else self.metrics.to_json(),
            "block_profile": None if profile is None else profile.to_json(),
        }

    def summary(self) -> str:
        """Human-readable report spanning all enabled pieces."""
        sections = []
        if self.tracer is not None:
            counts = " ".join(f"{k}={v}" for k, v in self.tracer.counts().items())
            sections.append(f"events: total={len(self.tracer)} {counts}".rstrip())
        if self.metrics is not None:
            sections.append("metrics:\n  " + self.metrics.summary().replace("\n", "\n  "))
        profile = self.block_profile()
        if profile is not None and len(profile):
            sections.append(
                "block profile:\n  " + profile.summary().replace("\n", "\n  ")
            )
        return "\n".join(sections) if sections else "trace: nothing recorded"


def resolve_trace(spec: Union[None, bool, str, Trace]) -> Optional[Trace]:
    """Normalize a user-facing ``trace=`` argument to a Trace or None."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return Trace()
    if isinstance(spec, Trace):
        return spec
    if isinstance(spec, str):
        if spec == "events":
            return Trace(events=True, metrics=False, profile=False)
        if spec == "metrics":
            return Trace(events=False, metrics=True, profile=False)
        if spec == "profile":
            return Trace(events=False, metrics=False, profile=True)
        if spec in ("full", "all"):
            return Trace()
        raise ValueError(
            f"unknown trace spec {spec!r}; expected 'events', 'metrics', 'profile', or 'full'"
        )
    raise TypeError(f"trace= expects None, bool, str, or Trace, got {type(spec).__name__}")
