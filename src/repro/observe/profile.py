"""Per-block execution profiles: where the batch's lanes go to waste.

Under masked execution every basic-block dispatch offers the full batch
width ``Z`` of lane-slots but only the lanes whose program counter sits
at that block do useful work.  The VM (when profiling is enabled)
records, per block: how many times it executed, how many lanes were
active at it, how many lanes were live anywhere in the machine at that
step, and how many slots the platform burned.  ``slots - active`` is the
block's *masked-lane waste* — the exact per-block signal ROADMAP item 3
(superblock fusion) needs: a block whose waste dominates is a straggler
that serializes the batch, and the fusion pass should target the region
around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class BlockRow:
    """Aggregated counters for one basic block (summed across machines)."""

    index: int
    label: str
    source: str
    executions: int = 0
    active: int = 0   # lane-slots doing useful work at this block
    live: int = 0     # lanes live anywhere in the machine at those steps
    slots: int = 0    # lane-slots the platform offered (Z per execution)

    @property
    def waste(self) -> int:
        """Masked-lane waste: offered slots that did no useful work."""
        return self.slots - self.active

    @property
    def occupancy(self) -> float:
        """Fraction of offered slots active at this block."""
        return self.active / self.slots if self.slots else 1.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "label": self.label,
            "source": self.source,
            "executions": self.executions,
            "active": self.active,
            "live": self.live,
            "slots": self.slots,
            "waste": self.waste,
            "occupancy": round(self.occupancy, 6),
        }


class BlockProfile:
    """Per-block execution report, merged across one or more machines.

    Build with :meth:`collect` over ``(program, instrumentation)`` pairs
    — a cluster contributes one pair per shard; shards running the same
    program merge by block index, so the fleet-wide profile reads like a
    single machine's.
    """

    def __init__(self, rows: Dict[int, BlockRow]) -> None:
        self._rows = rows

    @classmethod
    def collect(cls, machines: Iterable[Tuple[object, object]]) -> "BlockProfile":
        """Merge per-block counters from ``(program, instrumentation)`` pairs.

        Labels come from the first program that names a block index;
        callers merging *different* programs get index-keyed sums with
        first-seen labels, which is only meaningful if the programs share
        a block layout.
        """
        rows: Dict[int, BlockRow] = {}
        for program, instr in machines:
            by_block = getattr(instr, "by_block", None)
            if not by_block:
                continue
            blocks = getattr(program, "blocks", ())
            sources = getattr(program, "block_sources", ())
            for index in sorted(by_block):
                counter = by_block[index]
                row = rows.get(index)
                if row is None:
                    label = blocks[index].label if index < len(blocks) else f"block{index}"
                    source = sources[index] if index < len(sources) else ""
                    row = rows[index] = BlockRow(index=index, label=label, source=source)
                row.executions += counter.executions
                row.active += counter.active
                row.live += counter.live
                row.slots += counter.slots
        return cls(rows)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> List[BlockRow]:
        """All profiled blocks, in block-index order."""
        return [self._rows[i] for i in sorted(self._rows)]

    def row(self, index: int) -> Optional[BlockRow]:
        return self._rows.get(index)

    def stragglers(
        self, limit: Optional[int] = None, min_slots: int = 0
    ) -> List[BlockRow]:
        """Blocks ranked by masked-lane waste, worst first.

        The ranking is fully deterministic: waste descending, then block
        index ascending — equal-waste blocks always come out in program
        order, independent of dict iteration or collection order.  The top
        of this list is the input to superblock fusion: the blocks whose
        executions burn the most dead lane-slots.

        ``min_slots`` floors the ranking on offered slots: a block the
        profile barely sampled can post a perfect waste-per-execution
        ratio out of noise, so blocks with ``slots < min_slots`` are
        dropped (not just demoted) before ranking.  The default of 0
        keeps every profiled block.
        """
        if min_slots < 0:
            raise ValueError(f"min_slots must be >= 0, got {min_slots}")
        ranked = sorted(
            (r for r in self._rows.values() if r.slots >= min_slots),
            key=lambda r: (-r.waste, r.index),
        )
        return ranked if limit is None else ranked[:limit]

    @property
    def total_slots(self) -> int:
        return sum(r.slots for r in self._rows.values())

    @property
    def total_waste(self) -> int:
        return sum(r.waste for r in self._rows.values())

    def to_json(self) -> Dict[str, object]:
        """Canonical JSON-ready dict, rows in block-index order."""
        return {
            "total_slots": self.total_slots,
            "total_waste": self.total_waste,
            "blocks": [r.as_dict() for r in self.rows()],
        }

    def summary(self, limit: int = 5) -> str:
        """Straggler table: top blocks by waste, with occupancy."""
        if not self._rows:
            return "no blocks profiled"
        total = self.total_waste
        lines = [
            f"blocks={len(self._rows)} slots={self.total_slots} "
            f"waste={total} ({total / self.total_slots:.1%} of slots)"
            if self.total_slots
            else f"blocks={len(self._rows)} slots=0"
        ]
        for row in self.stragglers(limit):
            share = row.waste / total if total else 0.0
            lines.append(
                f"  block {row.index} [{row.label}] ({row.source}): "
                f"execs={row.executions} waste={row.waste} ({share:.1%}) "
                f"occupancy={row.occupancy:.3f}"
            )
        return "\n".join(lines)
