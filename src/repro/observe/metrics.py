"""Windowed time-series metrics on the logical clock.

The serving loops sample per-tick gauges — queue depth, busy lanes,
preempted backlog, utilization — into bounded ring buffers, so a
long-running fleet keeps a sliding window of recent behavior at O(window)
memory instead of an unbounded log.  Samples are (tick, value) pairs;
because ticks are logical, the series from two identical runs are
identical, and ``to_json()`` is canonical enough to diff byte-for-byte.

Also home to :func:`nearest_rank`, the one percentile definition shared
by every layer (telemetry summaries, SLO tables, metric series): sorted
values, index ``ceil(q/100 * n) - 1``.  Nearest-rank always returns an
observed value and never interpolates, which keeps percentile lines
deterministic and comparable across runs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


def nearest_rank(values: Iterable[float], q: float) -> float:
    """Deterministic nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Returns ``0.0`` on an empty input, matching the telemetry convention
    of zero-on-empty-denominator everywhere else in the stack.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if q == 0:
        return float(ordered[0])
    rank = math.ceil(q / 100.0 * len(ordered))
    return float(ordered[rank - 1])


class RingBuffer:
    """Fixed-capacity append-only buffer that drops its oldest entries.

    ``dropped`` counts evictions so reports can say how much history the
    window lost rather than silently truncating.
    """

    __slots__ = ("capacity", "dropped", "_data", "_start")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = int(capacity)
        self.dropped = 0
        self._data: List[object] = []
        self._start = 0

    def __len__(self) -> int:
        return len(self._data)

    def append(self, item: object) -> None:
        if len(self._data) < self.capacity:
            self._data.append(item)
        else:
            self._data[self._start] = item
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1

    def items(self) -> List[object]:
        """Contents oldest-first."""
        return self._data[self._start:] + self._data[: self._start]


class MetricsRecorder:
    """Named per-tick gauge series in bounded windows.

    One recorder serves a whole fleet: engines record under
    ``shard<N>/...`` prefixes, the cluster under ``fleet/...``, a
    standalone engine unprefixed.  Every series shares the same window.
    """

    def __init__(self, window: int = 4096) -> None:
        self.window = int(window)
        self._series: Dict[str, RingBuffer] = {}

    def series(self, name: str) -> RingBuffer:
        """The (created-on-demand) buffer behind series ``name``.

        The serving hot paths cache this per engine and append ``(tick,
        value)`` tuples directly, skipping the per-sample name lookup;
        everyone else should go through :meth:`record`.
        """
        buf = self._series.get(name)
        if buf is None:
            buf = self._series[name] = RingBuffer(self.window)
        return buf

    def record(self, name: str, tick: int, value: float) -> None:
        """Append one (tick, value) sample to series ``name``."""
        self.series(name).append((int(tick), float(value)))

    def names(self) -> List[str]:
        """All series names, sorted."""
        return sorted(self._series)

    def samples(self, name: str) -> List[Tuple[int, float]]:
        """The (tick, value) samples of a series, oldest-first."""
        buf = self._series.get(name)
        return [] if buf is None else list(buf.items())  # type: ignore[arg-type]

    def values(self, name: str) -> List[float]:
        """Just the values of a series, oldest-first."""
        return [v for _, v in self.samples(name)]

    def latest(self, name: str) -> Optional[float]:
        """The most recent value of a series, or ``None`` if empty."""
        samples = self.samples(name)
        return samples[-1][1] if samples else None

    def dropped(self, name: str) -> int:
        """Samples evicted from a series' window so far."""
        buf = self._series.get(name)
        return 0 if buf is None else buf.dropped

    def mean(self, name: str) -> float:
        """Mean of a series' windowed values (0.0 if empty)."""
        vals = self.values(name)
        return sum(vals) / len(vals) if vals else 0.0

    def percentile(self, name: str, q: float) -> float:
        """Nearest-rank percentile of a series' windowed values."""
        return nearest_rank(self.values(name), q)

    def to_json(self) -> Dict[str, object]:
        """Canonical JSON-ready dict (sorted series, parallel arrays)."""
        series = {}
        for name in self.names():
            samples = self.samples(name)
            series[name] = {
                "dropped": self.dropped(name),
                "ticks": [t for t, _ in samples],
                "values": [v for _, v in samples],
            }
        return {"window": self.window, "series": series}

    def summary(self) -> str:
        """One line per series: last / mean / p50 / p99 / max over the window."""
        lines = []
        for name in self.names():
            vals = self.values(name)
            if not vals:
                continue
            line = (
                f"{name}: last={vals[-1]:g} mean={self.mean(name):.2f} "
                f"p50={self.percentile(name, 50):g} p99={self.percentile(name, 99):g} "
                f"max={max(vals):g} n={len(vals)}"
            )
            dropped = self.dropped(name)
            if dropped:
                line += f" dropped={dropped}"
            lines.append(line)
        return "\n".join(lines) if lines else "no metric samples"
