"""Deterministic observability for the autobatching serving stack.

Everything here is stamped with the *logical* clock the engine and
cluster already run on, so identical runs produce identical traces —
the observability layer inherits the determinism of the thing it
observes instead of fighting it with wall-clock timestamps.

Three pieces, all opt-in via ``trace=`` on ``Engine``/``Cluster``/
``fn.serve``/``fn.serve_cluster`` and all off by default:

* **Event tracing** (:mod:`repro.observe.trace`) — per-request
  scheduling timelines (submit/inject/preempt/resume/steal/migrate/
  drain/complete/fail), exportable as Chrome trace JSON.
* **Time-series metrics** (:mod:`repro.observe.metrics`) — per-tick
  gauges in bounded ring buffers, with shared nearest-rank percentiles.
* **Block profiling** (:mod:`repro.observe.profile`) — per-block
  execution counts, occupancy, and masked-lane waste; the straggler
  ranking ROADMAP item 3 (superblock fusion) consumes.

:class:`Trace` (:mod:`repro.observe.report`) bundles the three behind
one object with ``summary()``/``to_json()``/``export_chrome_trace()``.
"""

from repro.observe.metrics import MetricsRecorder, RingBuffer, nearest_rank
from repro.observe.profile import BlockProfile, BlockRow
from repro.observe.report import Trace, resolve_trace
from repro.observe.trace import (
    EVENT_KINDS,
    TraceEvent,
    Tracer,
    validate_chrome_trace,
    validate_timeline,
)

__all__ = [
    "EVENT_KINDS",
    "BlockProfile",
    "BlockRow",
    "MetricsRecorder",
    "RingBuffer",
    "Trace",
    "TraceEvent",
    "Tracer",
    "nearest_rank",
    "resolve_trace",
    "validate_chrome_trace",
    "validate_timeline",
]
