"""The opportunistic batching scheduler.

Agenda algorithm (the core of Neubig et al.'s on-the-fly batching, distilled):
repeatedly collect every pending node whose inputs are all concrete, group
them by operation name, stack each group's inputs into one array, make one
batched kernel call per group, and scatter the outputs back to the nodes.
``kernel_calls`` vs ``nodes_executed`` quantifies the recovered batching.

Only same-event-shape scalars batch here (sufficient for the comparison;
the real systems add shape buckets).  Kernels come from the same primitive
registry the static machines use, so all three architectures run literally
the same numpy code.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

from repro.frontend.registry import PrimitiveRegistry, default_registry


class DynamicBatcher:
    """Executes pending lazy nodes in opportunistic batches."""

    def __init__(self, registry: Optional[PrimitiveRegistry] = None):
        self.registry = registry or default_registry
        self.kernel_calls = 0
        self.nodes_executed = 0
        self.waves = 0

    def batching_factor(self) -> float:
        """Average nodes served per kernel call (1.0 = no batching won)."""
        return self.nodes_executed / self.kernel_calls if self.kernel_calls else 0.0

    def flush(self, context, target=None) -> None:
        """Run the agenda until ``target`` (or everything) is concrete."""
        pending = context.pending
        while pending if target is None else (target._value is None):
            ready: Dict[str, List] = defaultdict(list)
            for node in pending.values():
                if node._value is None and node.ready:
                    ready[node.op].append(node)
            if not ready:
                if target is not None and target._value is None:
                    raise RuntimeError(
                        "dynamic batcher wedged: target not computable "
                        "(cycle or foreign-context argument?)"
                    )
                break
            self.waves += 1
            for op, nodes in ready.items():
                prim = self.registry.get(op)
                stacked = [
                    np.stack([np.asarray(n.args[i]._value) for n in nodes])
                    for i in range(prim.n_inputs)
                ]
                with np.errstate(all="ignore"):
                    out = prim.fn(*stacked)
                outs = out if prim.n_outputs > 1 else (out,)
                self.kernel_calls += 1
                self.nodes_executed += len(nodes)
                for b, node in enumerate(nodes):
                    node._value = (
                        outs[0][b]
                        if prim.n_outputs == 1
                        else tuple(o[b] for o in outs)
                    )
                    pending.pop(node.node_id, None)
        # Forced-target flush keeps other pending nodes for later waves.
