"""A miniature dynamic batcher (paper Section 5, Neubig et al. 2017).

The related-work survey contrasts two architectures: the *static* batching
this repository is about (local and program-counter — schedules computed
before execution), and **dynamic batching**, "exemplified by Neubig et al.
and Looks et al.", where "the runtime performs batching dynamically, by
running parallel evaluations of the user program against a scheduler that
manages the execution and batches opportunistically".

This subpackage implements the smallest faithful version of that runtime:
user programs build per-example **lazy expression graphs** (no control-flow
restrictions — each example's Python runs independently, branching on
concrete values whenever it likes by forcing a node); a scheduler then
executes all pending graphs together, grouping ready nodes by operation so
each group becomes one batched kernel call.

The paper's architectural claims, verified by ``tests/test_dynbatch.py``:

* dynamic batching can recover batching *across* examples with different
  control flow — even within a single execution when there is no data
  dependence;
* forcing a value mid-graph (data-dependent control) fragments batches;
* the price is per-node runtime scheduling overhead that the static
  architectures pay once, at extraction time.
"""

from repro.dynbatch.graph import Lazy, LazyContext
from repro.dynbatch.scheduler import DynamicBatcher

__all__ = ["Lazy", "LazyContext", "DynamicBatcher"]
