"""Lazy per-example expression graphs for the dynamic batcher.

A :class:`Lazy` node records an operation name and argument nodes instead
of computing.  Each user program builds its own graph; the scheduler later
executes many graphs' nodes together.  Forcing (:meth:`Lazy.value`) — which
data-dependent control flow requires — flushes the owning context's agenda
up to that node, fragmenting the opportunistic batches; that trade-off is
the paper's point about dynamic batching's relationship to control flow.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

import numpy as np

_ids = itertools.count()


class LazyContext:
    """Owns the pending nodes of one dynamic-batching session."""

    def __init__(self, batcher: "Any" = None):
        from repro.dynbatch.scheduler import DynamicBatcher

        self.batcher = batcher if batcher is not None else DynamicBatcher()
        self.pending: Dict[int, Lazy] = {}

    # -- node construction -------------------------------------------------------

    def constant(self, value) -> "Lazy":
        """A pre-forced node holding a concrete value."""
        node = Lazy(self, "const", (), payload=np.asarray(value))
        node._value = np.asarray(value)
        return node

    def apply(self, op: str, *args: "Lazy") -> "Lazy":
        """A deferred application of registry primitive ``op``."""
        coerced = tuple(
            a if isinstance(a, Lazy) else self.constant(a) for a in args
        )
        node = Lazy(self, op, coerced)
        self.pending[node.node_id] = node
        return node

    # -- forcing --------------------------------------------------------------------

    def force(self, node: "Lazy") -> np.ndarray:
        """Make ``node`` concrete, flushing the agenda as needed."""
        if node._value is None:
            self.batcher.flush(self, target=node)
        assert node._value is not None
        return node._value


class Lazy:
    """One deferred operation in a per-example graph."""

    __slots__ = ("context", "op", "args", "payload", "node_id", "_value")

    def __init__(
        self,
        context: LazyContext,
        op: str,
        args: Tuple["Lazy", ...],
        payload: Optional[np.ndarray] = None,
    ):
        self.context = context
        self.op = op
        self.args = args
        self.payload = payload
        self.node_id = next(_ids)
        self._value: Optional[np.ndarray] = None

    @property
    def ready(self) -> bool:
        """True when every argument is already concrete."""
        return all(a._value is not None for a in self.args)

    def value(self) -> np.ndarray:
        """Force this node (and everything it needs) to a concrete value."""
        return self.context.force(self)

    # -- operator sugar (maps onto the shared primitive registry names) --------

    def _binop(self, other, op):
        return self.context.apply(op, self, other)

    def __add__(self, other):
        return self._binop(other, "add")

    __radd__ = __add__

    def __sub__(self, other):
        return self._binop(other, "sub")

    def __rsub__(self, other):
        return self.context.apply("sub", self.context.constant(other), self)

    def __mul__(self, other):
        return self._binop(other, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binop(other, "div")

    def __mod__(self, other):
        return self._binop(other, "mod")

    def __floordiv__(self, other):
        return self._binop(other, "floordiv")

    def __le__(self, other):
        return self._binop(other, "le")

    def __lt__(self, other):
        return self._binop(other, "lt")

    def __gt__(self, other):
        return self._binop(other, "gt")

    def __ge__(self, other):
        return self._binop(other, "ge")

    def __repr__(self) -> str:
        state = "forced" if self._value is not None else "pending"
        return f"Lazy({self.op}, id={self.node_id}, {state})"
